// Failure-cascade recovery tests, one ctest entry per collector: an
// injected promotion / evacuation / concurrent-mode failure must degrade
// exactly as HotSpot would (full GC in the same pause, cycle abort + serial
// compact, region retain + fixup), after which the expanded cross-layer
// verifier must pass and the VM must keep allocating. Poisoning is enabled
// for every test in this binary (own executable for that reason — the
// global switch must not leak into the tier-1 binary), so a collector that
// "recovers" by leaking a stale pointer into zapped memory fails loudly.
//
// Also the structured-OOM negative tests: a hopeless allocation must fail
// fast with OutOfMemoryError(hopeless) and run zero collections; heap
// exhaustion must walk the whole ladder and then throw — never abort,
// never hang — leaving a VM that still works once the load is dropped.
#include <gtest/gtest.h>

#include "gc/cms_gc.h"
#include "heap/poison.h"
#include "runtime/heap_verifier.h"
#include "runtime/managed.h"
#include "runtime/vm.h"
#include "support/fault.h"
#include "support/units.h"

namespace mgc {
namespace {

VmConfig small_vm(GcKind gc) {
  VmConfig cfg;
  cfg.gc = gc;
  cfg.heap_bytes = 10 * MiB;
  cfg.young_bytes = 3 * MiB;
  cfg.gc_threads = 2;
  if (gc == GcKind::kG1) cfg.g1_region_bytes = 128 * KiB;
  return cfg;
}

// Sums the degraded-mode counters over every pause logged so far.
GcFailureCounters total_failures(const Vm& vm) {
  GcFailureCounters total;
  for (const PauseEvent& e : vm.gc_log().snapshot()) {
    total.promotion_failures += e.failures.promotion_failures;
    total.concurrent_mode_failures += e.failures.concurrent_mode_failures;
    total.evacuation_failures += e.failures.evacuation_failures;
  }
  return total;
}

class FaultRecovery : public ::testing::TestWithParam<GcKind> {
 protected:
  void SetUp() override {
    poison::set_enabled(true);
    fault::disarm_all();
  }
  void TearDown() override { fault::disarm_all(); }
};

INSTANTIATE_TEST_SUITE_P(Collectors, FaultRecovery,
                         ::testing::ValuesIn(all_gc_kinds()),
                         [](const ::testing::TestParamInfo<GcKind>& info) {
                           return gc_traits(info.param).short_name;
                         });

TEST_P(FaultRecovery, InjectedEvacuationFailureRecoversToConsistentHeap) {
  Vm vm(small_vm(GetParam()));
  Vm::MutatorScope scope(vm, "promo-fail");
  Mutator& m = scope.mutator();

  // A live young graph big enough that the scavenge has real copying to do.
  Local retained(m, managed::ref_array::create(m, 512));
  for (std::size_t j = 0; j < 512; ++j) {
    Local node(m, m.alloc(1, 16));
    node->set_field(0, j * 31);
    managed::ref_array::set(m, retained.get(), j, node.get());
  }

  {
    fault::Policy p;
    p.limit = 3;  // a few objects fail to copy, then the cascade takes over
    fault::ScopedFault inject(GetParam() == GcKind::kG1
                                  ? fault::Site::kG1EvacFail
                                  : fault::Site::kPromotionFail,
                              p);
    vm.collect(&m, /*full=*/false, GcCause::kSystemGc);
  }

  const GcFailureCounters fc = total_failures(vm);
  if (GetParam() == GcKind::kG1) {
    EXPECT_GE(fc.evacuation_failures, 1u);
  } else {
    EXPECT_GE(fc.promotion_failures, 1u);
  }

  // The degraded pause must have left a fully consistent heap...
  const VerifyReport rep = verify_heap_at_safepoint(m);
  for (const auto& p : rep.problems) ADD_FAILURE() << p;

  // ...with the graph intact...
  for (std::size_t j = 0; j < 512; ++j) {
    Obj* node = managed::ref_array::get(retained.get(), j);
    ASSERT_NE(node, nullptr) << j;
    EXPECT_EQ(node->field(0), j * 31) << j;
  }

  // ...and the VM still collects cleanly with the fault gone.
  m.system_gc();
  const VerifyReport after = verify_heap_at_safepoint(m);
  for (const auto& p : after.problems) ADD_FAILURE() << p;
}

TEST_P(FaultRecovery, HopelessAllocationFailsFastWithoutCollecting) {
  Vm vm(small_vm(GetParam()));
  Vm::MutatorScope scope(vm, "hopeless");
  Mutator& m = scope.mutator();

  const std::size_t pauses_before = vm.gc_log().count();
  const std::uint64_t epoch_before = vm.gc_epoch();
  bool threw = false;
  try {
    // ~64 MB payload against a 10 MiB heap: no ladder rung can ever fit it.
    m.alloc(0, 8 * MiB);
  } catch (const OutOfMemoryError& e) {
    threw = true;
    EXPECT_TRUE(e.hopeless());
    EXPECT_GT(e.requested_bytes(), vm.config().heap_bytes);
  }
  EXPECT_TRUE(threw);
  // Fail fast means exactly that: no collection ran on the request's behalf.
  EXPECT_EQ(vm.gc_log().count(), pauses_before);
  EXPECT_EQ(vm.gc_epoch(), epoch_before);

  // The mutator is still usable.
  Local ok(m, m.alloc(0, 8));
  ok->set_field(0, 7);
  EXPECT_EQ(ok->field(0), 7u);
}

TEST_P(FaultRecovery, HeapExhaustionWalksTheLadderThenThrowsStructuredOom) {
  Vm vm(small_vm(GetParam()));
  Vm::MutatorScope scope(vm, "exhaust");
  Mutator& m = scope.mutator();

  bool threw = false;
  {
    // Retain 16 KiB blobs until nothing fits. Bounded loop: if the ladder
    // ever turned into an infinite collect-retry cycle, the test times out
    // instead of spinning forever.
    Local list(m, managed::list::create(m));
    try {
      for (int i = 0; i < 4000; ++i) {
        Local blob(m, m.alloc(0, 2048));
        blob->set_field(0, static_cast<std::uint64_t>(i));
        managed::list::push(m, list, blob);
      }
    } catch (const OutOfMemoryError& e) {
      threw = true;
      EXPECT_FALSE(e.hopeless());
      EXPECT_GT(e.requested_bytes(), 0u);
    }
  }
  ASSERT_TRUE(threw) << "4000 x 16KiB must overrun a 10MiB heap";
  // The ladder must have burned real full collections before giving up.
  EXPECT_GT(vm.full_gc_epoch(), 0u);

  // Dropping the load (the list Local is gone) must make the VM whole again.
  m.system_gc();
  const VerifyReport rep = verify_heap_at_safepoint(m);
  for (const auto& p : rep.problems) ADD_FAILURE() << p;
  for (int i = 0; i < 64; ++i) {
    Local blob(m, m.alloc(0, 2048));
    blob->set_field(0, 1);
  }
}

TEST_P(FaultRecovery, ReserveBackedHeapExpandsInsteadOfThrowing) {
  if (GetParam() == GcKind::kG1) {
    GTEST_SKIP() << "G1 has a fixed region count; no expansion support";
  }
  VmConfig cfg = small_vm(GetParam());
  cfg.heap_reserve_bytes = 6 * MiB;
  Vm vm(cfg);
  Vm::MutatorScope scope(vm, "expand");
  Mutator& m = scope.mutator();

  const std::size_t old_cap_before = vm.usage().old_capacity;

  // ~11.5 MiB live against a 10 MiB heap: only expansion can satisfy this.
  Local list(m, managed::list::create(m));
  for (int i = 0; i < 704; ++i) {
    Local blob(m, m.alloc(0, 2048));
    blob->set_field(0, static_cast<std::uint64_t>(i));
    managed::list::push(m, list, blob);
  }

  EXPECT_GT(vm.usage().old_capacity, old_cap_before);
  const VerifyReport rep = verify_heap_at_safepoint(m);
  for (const auto& p : rep.problems) ADD_FAILURE() << p;

  // The expansion pause is visible in the log.
  bool saw_expand = false;
  for (const PauseEvent& e : vm.gc_log().snapshot()) {
    if (e.kind == PauseKind::kHeapExpand) saw_expand = true;
  }
  EXPECT_TRUE(saw_expand);
}

TEST_P(FaultRecovery, RefusedExpansionStillEndsInStructuredOom) {
  if (GetParam() == GcKind::kG1) {
    GTEST_SKIP() << "G1 has a fixed region count; no expansion support";
  }
  VmConfig cfg = small_vm(GetParam());
  cfg.heap_reserve_bytes = 6 * MiB;
  Vm vm(cfg);
  Vm::MutatorScope scope(vm, "expand-refused");
  Mutator& m = scope.mutator();

  fault::ScopedFault refuse(fault::Site::kHeapExpand);
  bool threw = false;
  {
    Local list(m, managed::list::create(m));
    try {
      for (int i = 0; i < 4000; ++i) {
        Local blob(m, m.alloc(0, 2048));
        managed::list::push(m, list, blob);
      }
    } catch (const OutOfMemoryError& e) {
      threw = true;
      EXPECT_FALSE(e.hopeless());
    }
  }
  ASSERT_TRUE(threw);
  // The reserve was never committed: the refusal held.
  EXPECT_EQ(fault::fire_count(fault::Site::kHeapExpand), 1u);
  m.system_gc();
  const VerifyReport rep = verify_heap_at_safepoint(m);
  for (const auto& p : rep.problems) ADD_FAILURE() << p;
}

TEST(CmsFaultRecovery, InjectedConcurrentModeFailureAbortsCycleAndCompacts) {
  poison::set_enabled(true);
  fault::disarm_all();
  VmConfig cfg;
  cfg.gc = GcKind::kCms;
  cfg.heap_bytes = 12 * MiB;
  cfg.young_bytes = 2 * MiB;
  cfg.gc_threads = 2;
  cfg.cms_trigger_occupancy = 0.10;  // cycle early and often
  Vm vm(cfg);
  const std::size_t root = vm.create_global_root();
  {
    Vm::MutatorScope s(vm, "init");
    vm.set_global_root(root, managed::hash_map::create(s.mutator(), 1024));
  }

  {
    fault::Policy p;
    p.after = 4;  // let the cycle get into its stride first
    p.limit = 1;
    fault::ScopedFault inject(fault::Site::kCmsConcurrentFail, p);

    Vm::MutatorScope scope(vm, "churn");
    Mutator& m = scope.mutator();
    for (int i = 0; i < 60000; ++i) {
      const auto key = static_cast<std::uint64_t>(i) % 4000;
      Local value(m, m.alloc(1, 24));
      value->set_field(0, key * 7);
      Local map(m, vm.global_root(root));
      managed::hash_map::put(m, map, key, value);
    }
  }
  fault::disarm_all();

  auto& cms = static_cast<CmsGc&>(vm.collector());
  EXPECT_GE(cms.concurrent_mode_failures(), 1u)
      << "the injected concurrent-phase failure never engaged";
  const GcFailureCounters fc = total_failures(vm);
  EXPECT_GE(fc.concurrent_mode_failures, 1u)
      << "the failure must be first-class log data";

  Vm::MutatorScope s(vm, "verify");
  Mutator& m = s.mutator();
  Obj* map = vm.global_root(root);
  for (std::uint64_t k = 0; k < 4000; k += 13) {
    Obj* v = managed::hash_map::get(map, k);
    ASSERT_NE(v, nullptr) << k;
    EXPECT_EQ(v->field(0), k * 7);
  }
  const VerifyReport rep = verify_heap_at_safepoint(m);
  for (const auto& p : rep.problems) ADD_FAILURE() << p;
}

}  // namespace
}  // namespace mgc
