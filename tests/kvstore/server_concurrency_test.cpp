// Server/store concurrency: mixed read/write traffic from many clients,
// flush racing traffic, queue back-pressure, and heap soundness at the end.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>

#include "kvstore/server.h"
#include "runtime/heap_verifier.h"
#include "support/rng.h"
#include "support/units.h"

namespace mgc::kv {
namespace {

TEST(ServerConcurrency, MixedTrafficWithFlushes) {
  VmConfig cfg;
  cfg.gc = GcKind::kParallelOld;
  cfg.heap_bytes = 24 * MiB;
  cfg.young_bytes = 6 * MiB;
  cfg.gc_threads = 2;
  Vm vm(cfg);
  StoreConfig scfg;
  scfg.memtable_flush_bytes = 1 * MiB;  // flush often
  scfg.commitlog_segment_bytes = 512 * KiB;
  scfg.commitlog_retention_bytes = 2 * MiB;
  scfg.value_len = 512;
  Store store(vm, scfg);
  Server server(vm, store, /*workers=*/3, /*queue_capacity=*/16);

  std::atomic<int> found{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(static_cast<std::uint64_t>(c) + 1);
      for (int i = 0; i < 2000; ++i) {
        Request req;
        if (rng.chance(0.5)) {
          req.op = OpType::kInsert;
          req.key = rng.below(3000);
          req.value_len = 512;
          server.execute(req);
        } else {
          req.op = OpType::kRead;
          req.key = rng.below(3000);
          if (server.execute(req).found) found.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : clients) t.join();

  EXPECT_EQ(server.completed(), 8000u);
  EXPECT_GT(store.flush_count(), 0u) << "expected several memtable flushes";
  EXPECT_GT(found.load(), 0);
  EXPECT_GT(store.sstables().total_rows(), 0u);

  // Every key written is readable from memtable or sstables.
  Vm::MutatorScope scope(vm, "verify");
  Mutator& m = scope.mutator();
  char buf[1024];
  std::size_t readable = 0;
  for (std::uint64_t k = 0; k < 3000; ++k) {
    std::size_t len = 0;
    if (store.get(m, k, buf, sizeof(buf), &len)) {
      EXPECT_EQ(len, 512u);
      ++readable;
    }
  }
  EXPECT_GT(readable, 1000u);

  const VerifyReport rep = verify_heap(vm);
  for (const auto& p : rep.problems) ADD_FAILURE() << p;
}

TEST(ServerConcurrency, QueueBackPressureBlocksClients) {
  VmConfig cfg;
  cfg.gc = GcKind::kSerial;
  cfg.heap_bytes = 8 * MiB;
  cfg.young_bytes = 2 * MiB;
  Vm vm(cfg);
  StoreConfig scfg = StoreConfig::default_config(cfg.heap_bytes);
  Store store(vm, scfg);
  Server server(vm, store, /*workers=*/1, /*queue_capacity=*/2);
  // Many clients against a 1-worker, 2-slot queue: correctness under
  // saturation (no lost or duplicated completions).
  std::vector<std::thread> clients;
  for (int c = 0; c < 6; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < 200; ++i) {
        Request req;
        req.op = OpType::kInsert;
        req.key = static_cast<std::uint64_t>(c) * 1000 + i;
        req.value_len = 64;
        server.execute(req);
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(server.completed(), 1200u);
  EXPECT_EQ(store.memtable().row_count(), 1200u);
}

// Regression: destroying the server while clients are blocked on a full
// queue used to hang — ~Server only woke the workers, never the clients
// parked on space_cv_. Now blocked clients wake and get
// ExecStatus::kShutdown; requests already queued still complete.
TEST(ServerConcurrency, DestroyUnderLoadReleasesBlockedClients) {
  VmConfig cfg;
  cfg.gc = GcKind::kSerial;
  cfg.heap_bytes = 8 * MiB;
  cfg.young_bytes = 2 * MiB;
  Vm vm(cfg);
  StoreConfig scfg = StoreConfig::default_config(cfg.heap_bytes);
  Store store(vm, scfg);
  // 1 worker and a 1-slot queue: with 6 looping clients, several are
  // blocked in admission control at any instant.
  auto server = std::make_unique<Server>(vm, store, /*workers=*/1,
                                         /*queue_capacity=*/1);

  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> rejected{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 6; ++c) {
    clients.emplace_back([&, c] {
      std::uint64_t key = static_cast<std::uint64_t>(c) * 100000;
      for (;;) {
        Request req;
        req.op = OpType::kInsert;
        req.key = key++;
        req.value_len = 64;
        const Response r = server->execute(req);
        if (r.status == ExecStatus::kShutdown) {
          rejected.fetch_add(1);
          break;  // server going away: the only exit from this loop
        }
        ok.fetch_add(1);
      }
    });
  }

  // Let the clients pile up against the 1-slot queue, then pull the rug.
  // shutdown() runs the destructor's teardown while clients are blocked in
  // execute(); the object itself stays alive until they have all seen the
  // rejection and exited.
  while (ok.load() < 100) std::this_thread::yield();
  server->shutdown();  // must not hang with clients blocked on space_cv_
  for (auto& t : clients) t.join();
  server.reset();

  EXPECT_EQ(rejected.load(), 6u) << "every client must observe shutdown";
  EXPECT_GE(ok.load(), 100u);
  // Everything acknowledged as kOk really executed.
  EXPECT_GE(store.memtable().row_count() + store.sstables().total_rows(),
            ok.load());
}

TEST(SsTables, NewestTableWins) {
  SsTableSet set;
  std::unordered_map<std::uint64_t, SsTableSet::StoredRow> t1;
  t1[5] = {1, {'a'}};
  set.add_table(std::move(t1));
  std::unordered_map<std::uint64_t, SsTableSet::StoredRow> t2;
  t2[5] = {2, {'b'}};
  set.add_table(std::move(t2));

  char out = 0;
  std::size_t len = 0;
  std::uint64_t version = 0;
  ASSERT_TRUE(set.get(5, &out, 1, &len, &version));
  EXPECT_EQ(out, 'b');
  EXPECT_EQ(version, 2u);
  EXPECT_EQ(set.table_count(), 2u);
  EXPECT_FALSE(set.get(6, &out, 1, &len, &version));
}

}  // namespace
}  // namespace mgc::kv
