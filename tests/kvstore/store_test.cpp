// kvstore unit/integration tests: row codec, memtable, commit log
// retention, flush-to-sstable semantics, and the full server path.
#include <gtest/gtest.h>

#include "kvstore/server.h"
#include "support/units.h"

namespace mgc::kv {
namespace {

VmConfig vm_config() {
  VmConfig cfg;
  cfg.gc = GcKind::kParallelOld;
  cfg.heap_bytes = 16 * MiB;
  cfg.young_bytes = 4 * MiB;
  cfg.gc_threads = 2;
  return cfg;
}

TEST(RowCodec, RoundTrip) {
  Vm vm(vm_config());
  Vm::MutatorScope s(vm, "t");
  Mutator& m = s.mutator();
  // Long enough to span several column fragments.
  std::vector<char> value(300);
  for (std::size_t i = 0; i < value.size(); ++i)
    value[i] = static_cast<char>(i * 7);
  Local row(m, encode_row(m, 42, 7, value.data(), value.size()));
  EXPECT_EQ(row_key(row.get()), 42u);
  EXPECT_EQ(row_version(row.get()), 7u);
  ASSERT_EQ(row_value_len(row.get()), value.size());
  EXPECT_GE(row.get()->num_refs(), 2u) << "expected a multi-column chain";
  std::vector<char> out(value.size());
  EXPECT_EQ(row_copy_value(row.get(), out.data(), out.size()), value.size());
  EXPECT_EQ(out, value);
}

TEST(MemtableTest, PutGetResetAccounting) {
  Vm vm(vm_config());
  Memtable table(vm, 256);
  Vm::MutatorScope s(vm, "t");
  Mutator& m = s.mutator();

  char buf[64];
  EXPECT_FALSE(table.get(m, 1, buf, sizeof(buf), nullptr, nullptr));
  table.put(m, 1, 1, "abc", 3);
  table.put(m, 2, 2, "defg", 4);
  std::size_t len = 0;
  ASSERT_TRUE(table.get(m, 1, buf, sizeof(buf), &len, nullptr));
  EXPECT_EQ(len, 3u);
  EXPECT_EQ(std::memcmp(buf, "abc", 3), 0);
  EXPECT_EQ(table.row_count(), 2u);
  EXPECT_GT(table.approx_bytes(), 0u);

  // Overwrite does not grow the live-byte estimate.
  const std::size_t before = table.approx_bytes();
  table.put(m, 1, 3, "zzz", 3);
  EXPECT_EQ(table.approx_bytes(), before);

  table.reset(m);
  EXPECT_EQ(table.row_count(), 0u);
  EXPECT_EQ(table.approx_bytes(), 0u);
  EXPECT_FALSE(table.get(m, 1, buf, sizeof(buf), nullptr, nullptr));
}

TEST(CommitLogTest, RetentionBoundsHeapUsage) {
  Vm vm(vm_config());
  CommitLog log(vm, /*segment=*/64 * KiB, /*retention=*/256 * KiB);
  Vm::MutatorScope s(vm, "t");
  Mutator& m = s.mutator();
  std::vector<char> value(512, 'x');
  for (int i = 0; i < 4000; ++i) {
    log.append(m, static_cast<std::uint64_t>(i), value.data(), value.size());
  }
  // Retention is enforced at segment rotation; allow one extra segment.
  EXPECT_LE(log.approx_bytes(), 256 * KiB + 2 * 64 * KiB);
  log.truncate(m);
  EXPECT_EQ(log.approx_bytes(), 0u);
}

TEST(StoreTest, FlushMovesRowsToSsTables) {
  Vm vm(vm_config());
  StoreConfig cfg;
  cfg.memtable_flush_bytes = 128 * KiB;
  cfg.commitlog_segment_bytes = 64 * KiB;
  cfg.commitlog_retention_bytes = 256 * KiB;
  Store store(vm, cfg);
  Vm::MutatorScope s(vm, "t");
  Mutator& m = s.mutator();

  std::vector<char> value(256, 'v');
  for (std::uint64_t k = 0; k < 2000; ++k) {
    value[0] = static_cast<char>(k);
    store.put(m, k, value.data(), value.size());
  }
  EXPECT_GT(store.flush_count(), 0u);
  EXPECT_GT(store.sstables().table_count(), 0u);

  // Every key is still readable (memtable or sstable).
  char buf[512];
  for (std::uint64_t k = 0; k < 2000; k += 37) {
    std::size_t len = 0;
    ASSERT_TRUE(store.get(m, k, buf, sizeof(buf), &len)) << k;
    EXPECT_EQ(len, value.size());
    EXPECT_EQ(buf[0], static_cast<char>(k));
  }
}

TEST(ServerTest, EndToEndReadsAndWrites) {
  Vm vm(vm_config());
  StoreConfig cfg = StoreConfig::default_config(vm.config().heap_bytes);
  cfg.value_len = 256;
  Store store(vm, cfg);
  Server server(vm, store, /*workers=*/4);

  // Insert then read back from plain client threads.
  std::vector<std::thread> clients;
  std::atomic<int> found{0};
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      for (std::uint64_t k = static_cast<std::uint64_t>(c); k < 400; k += 4) {
        Request w;
        w.op = OpType::kInsert;
        w.key = k;
        w.value_len = 256;
        server.execute(w);
      }
      for (std::uint64_t k = static_cast<std::uint64_t>(c); k < 400; k += 4) {
        Request r;
        r.op = OpType::kRead;
        r.key = k;
        if (server.execute(r).found) found.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(found.load(), 400);
  EXPECT_EQ(server.completed(), 800u);
}

}  // namespace
}  // namespace mgc::kv
