// Commit-log replay and sstable round-trip coverage: the recovery-path
// semantics the store relies on — append/replay preserves order and
// content across segment rotations and GC, retention drops a prefix (never
// a middle record), and sstable write/read/iterate agree on versions.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <vector>

#include "kvstore/commit_log.h"
#include "kvstore/sstable.h"
#include "support/units.h"

namespace mgc::kv {
namespace {

VmConfig vm_config() {
  VmConfig cfg;
  cfg.gc = GcKind::kParNew;
  cfg.heap_bytes = 16 * MiB;
  cfg.young_bytes = 4 * MiB;
  cfg.gc_threads = 2;
  return cfg;
}

struct Replayed {
  std::uint64_t key;
  std::vector<char> value;
};

std::vector<Replayed> replay_all(CommitLog& log, Mutator& m) {
  std::vector<Replayed> out;
  log.replay(m, [&](std::uint64_t key, const char* value, std::size_t len) {
    out.push_back({key, std::vector<char>(value, value + len)});
  });
  return out;
}

TEST(CommitLogReplay, EmptyLogReplaysNothing) {
  Vm vm(vm_config());
  CommitLog log(vm, /*segment=*/16 * KiB, /*retention=*/1 * MiB);
  Vm::MutatorScope s(vm, "t");
  EXPECT_TRUE(replay_all(log, s.mutator()).empty());
}

TEST(CommitLogReplay, RoundTripPreservesOrderAndContentAcrossSegments) {
  Vm vm(vm_config());
  // Small segments force several rotations; retention keeps everything.
  CommitLog log(vm, /*segment=*/16 * KiB, /*retention=*/4 * MiB);
  Vm::MutatorScope s(vm, "t");
  Mutator& m = s.mutator();

  constexpr std::uint64_t kRecords = 200;
  std::vector<char> value(64);
  for (std::uint64_t k = 0; k < kRecords; ++k) {
    for (std::size_t i = 0; i < value.size(); ++i)
      value[i] = static_cast<char>(k * 13 + i);
    log.append(m, k, value.data(), value.size());
  }
  ASSERT_GT(log.segment_count(), 2u) << "test should span rotated segments";

  // Survive a full collection: records are only reachable via the log's
  // global roots.
  vm.collect(&m, /*full=*/true, GcCause::kSystemGc);

  const std::vector<Replayed> got = replay_all(log, m);
  ASSERT_EQ(got.size(), kRecords);
  for (std::uint64_t k = 0; k < kRecords; ++k) {
    EXPECT_EQ(got[k].key, k);
    ASSERT_EQ(got[k].value.size(), value.size());
    for (std::size_t i = 0; i < value.size(); ++i) {
      ASSERT_EQ(got[k].value[i], static_cast<char>(k * 13 + i))
          << "record " << k << " byte " << i;
    }
  }
}

TEST(CommitLogReplay, RetentionDropsAPrefixOnly) {
  Vm vm(vm_config());
  CommitLog log(vm, /*segment=*/16 * KiB, /*retention=*/48 * KiB);
  Vm::MutatorScope s(vm, "t");
  Mutator& m = s.mutator();

  constexpr std::uint64_t kRecords = 600;
  std::vector<char> value(128, 'r');
  for (std::uint64_t k = 0; k < kRecords; ++k) {
    value[0] = static_cast<char>(k);
    log.append(m, k, value.data(), value.size());
  }

  const std::vector<Replayed> got = replay_all(log, m);
  ASSERT_FALSE(got.empty());
  ASSERT_LT(got.size(), kRecords) << "retention should have dropped segments";
  // The survivors are a contiguous suffix of the append history, in order.
  EXPECT_EQ(got.back().key, kRecords - 1);
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].key, kRecords - got.size() + i);
  }
}

TEST(CommitLogReplay, TruncateEmptiesTheReplayStream) {
  Vm vm(vm_config());
  CommitLog log(vm, /*segment=*/16 * KiB, /*retention=*/1 * MiB);
  Vm::MutatorScope s(vm, "t");
  Mutator& m = s.mutator();

  std::vector<char> value(64, 'x');
  for (std::uint64_t k = 0; k < 100; ++k)
    log.append(m, k, value.data(), value.size());
  ASSERT_FALSE(replay_all(log, m).empty());

  log.truncate(m);
  EXPECT_TRUE(replay_all(log, m).empty());

  // The log keeps working after truncation.
  log.append(m, 7, value.data(), value.size());
  const std::vector<Replayed> got = replay_all(log, m);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].key, 7u);
}

TEST(SsTableRoundTrip, WriteReadIterateAgree) {
  SsTableSet set;
  auto make_row = [](std::uint64_t version, char fill, std::size_t len) {
    SsTableSet::StoredRow row;
    row.version = version;
    row.value.assign(len, fill);
    return row;
  };

  // Older table: keys 0..99 at version 1.
  std::unordered_map<std::uint64_t, SsTableSet::StoredRow> t1;
  for (std::uint64_t k = 0; k < 100; ++k)
    t1.emplace(k, make_row(1, 'a', 32));
  set.add_table(std::move(t1));
  // Newer table shadows keys 50..149 at version 2.
  std::unordered_map<std::uint64_t, SsTableSet::StoredRow> t2;
  for (std::uint64_t k = 50; k < 150; ++k)
    t2.emplace(k, make_row(2, 'b', 48));
  set.add_table(std::move(t2));

  EXPECT_EQ(set.table_count(), 2u);
  EXPECT_EQ(set.total_rows(), 200u);

  // Reads: newest table wins on shadowed keys.
  char buf[64];
  std::size_t len = 0;
  std::uint64_t version = 0;
  ASSERT_TRUE(set.get(10, buf, sizeof(buf), &len, &version));
  EXPECT_EQ(version, 1u);
  EXPECT_EQ(len, 32u);
  EXPECT_EQ(buf[0], 'a');
  ASSERT_TRUE(set.get(60, buf, sizeof(buf), &len, &version));
  EXPECT_EQ(version, 2u);
  EXPECT_EQ(len, 48u);
  EXPECT_EQ(buf[0], 'b');
  EXPECT_FALSE(set.get(500, buf, sizeof(buf), &len, &version));

  // A too-small buffer still reports the full length, copying what fits.
  char tiny[8];
  std::memset(tiny, 0, sizeof(tiny));
  ASSERT_TRUE(set.get(60, tiny, sizeof(tiny), &len, nullptr));
  EXPECT_EQ(len, 48u);
  EXPECT_EQ(tiny[7], 'b');

  // Iteration: every stored row visited exactly once, newest table first,
  // so the first visit of a shadowed key carries the newest version.
  std::size_t visited = 0;
  std::map<std::uint64_t, std::uint64_t> first_version;
  set.for_each([&](std::uint64_t key, const SsTableSet::StoredRow& row) {
    ++visited;
    first_version.emplace(key, row.version);
    EXPECT_EQ(row.value.front(), row.version == 1 ? 'a' : 'b');
  });
  EXPECT_EQ(visited, 200u);
  ASSERT_EQ(first_version.size(), 150u);  // distinct keys 0..149
  EXPECT_EQ(first_version[10], 1u);
  EXPECT_EQ(first_version[60], 2u);   // shadowed: newest seen first
  EXPECT_EQ(first_version[120], 2u);  // only in the newer table
}

}  // namespace
}  // namespace mgc::kv
