// Remembered-set unit coverage: membership semantics, snapshot isolation,
// and concurrent insertion from racing barrier threads (the G1 post-write
// barrier calls add_card from every mutator).
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "heap/remembered_set.h"

namespace mgc {
namespace {

TEST(RememberedSet, StartsEmpty) {
  RememberedSet rs;
  EXPECT_EQ(rs.size(), 0u);
  EXPECT_FALSE(rs.contains(0));
  EXPECT_TRUE(rs.snapshot().empty());
}

TEST(RememberedSet, AddIsIdempotent) {
  RememberedSet rs;
  rs.add_card(17);
  rs.add_card(17);
  rs.add_card(17);
  EXPECT_EQ(rs.size(), 1u);
  EXPECT_TRUE(rs.contains(17));
  EXPECT_FALSE(rs.contains(16));
}

TEST(RememberedSet, ClearRemovesEverything) {
  RememberedSet rs;
  for (std::uint32_t c = 0; c < 64; ++c) rs.add_card(c);
  EXPECT_EQ(rs.size(), 64u);
  rs.clear();
  EXPECT_EQ(rs.size(), 0u);
  EXPECT_FALSE(rs.contains(0));
  EXPECT_FALSE(rs.contains(63));
  // Reusable after clear (regions are recycled after evacuation).
  rs.add_card(7);
  EXPECT_TRUE(rs.contains(7));
  EXPECT_EQ(rs.size(), 1u);
}

TEST(RememberedSet, SnapshotIsAnIndependentCopy) {
  RememberedSet rs;
  rs.add_card(1);
  rs.add_card(2);
  std::vector<std::uint32_t> snap = rs.snapshot();
  ASSERT_EQ(snap.size(), 2u);

  // Mutations after the snapshot do not affect it.
  rs.add_card(3);
  rs.clear();
  EXPECT_EQ(snap.size(), 2u);
  std::sort(snap.begin(), snap.end());
  EXPECT_EQ(snap, (std::vector<std::uint32_t>{1, 2}));
}

TEST(RememberedSet, ConcurrentAddsFromBarrierThreads) {
  RememberedSet rs;
  constexpr int kThreads = 8;
  constexpr std::uint32_t kCardsPerThread = 512;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&rs, t] {
      // Interleaved, overlapping card ranges: every pair of adjacent
      // threads contends on half its cards.
      const std::uint32_t lo = static_cast<std::uint32_t>(t) * 256;
      for (std::uint32_t i = 0; i < kCardsPerThread; ++i) {
        rs.add_card(lo + i);
      }
    });
  }
  for (auto& th : threads) th.join();

  // Union of [t*256, t*256+512) for t in 0..7 = [0, 2304).
  const std::uint32_t kTotal = (kThreads - 1) * 256 + kCardsPerThread;
  EXPECT_EQ(rs.size(), kTotal);
  for (std::uint32_t c = 0; c < kTotal; ++c) {
    ASSERT_TRUE(rs.contains(c)) << "card " << c;
  }
  EXPECT_FALSE(rs.contains(kTotal));
}

TEST(RememberedSet, ConcurrentReadersSeeStableMembership) {
  RememberedSet rs;
  for (std::uint32_t c = 0; c < 128; ++c) rs.add_card(c * 2);

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> misses{0};
  // Readers verify established membership while a writer adds new cards.
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        for (std::uint32_t c = 0; c < 128; ++c) {
          if (!rs.contains(c * 2)) misses.fetch_add(1);
        }
      }
    });
  }
  std::thread writer([&] {
    for (std::uint32_t c = 1000; c < 4000; ++c) rs.add_card(c);
    stop.store(true, std::memory_order_release);
  });
  writer.join();
  for (auto& r : readers) r.join();

  EXPECT_EQ(misses.load(), 0u);
  EXPECT_EQ(rs.size(), 128u + 3000u);
}

}  // namespace
}  // namespace mgc
