// Object model: layout, shape, flags, forwarding races.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "heap/arena.h"
#include "support/units.h"
#include "heap/object.h"

namespace mgc {
namespace {

TEST(ObjectModel, HeaderIsTwoWords) {
  EXPECT_EQ(sizeof(ObjHeader), 16u);
  EXPECT_EQ(sizeof(RefSlot), 8u);
}

TEST(ObjectModel, ShapeWordsRoundsToAlignment) {
  // header(2) + 1 ref + 1 payload = 4 words = 32 B, already 16-aligned.
  EXPECT_EQ(Obj::shape_words(1, 1), 4u);
  // header(2) + 0 refs + 1 payload = 3 words -> rounds to 4.
  EXPECT_EQ(Obj::shape_words(0, 1), 4u);
  EXPECT_EQ(Obj::shape_words(0, 0), 2u);
  EXPECT_EQ(Obj::shape_words(3, 2), 8u);
}

TEST(ObjectModel, InitZeroesRefsAndSetsShape) {
  Arena arena(4096);
  Obj* o = Obj::init(arena.base(), Obj::shape_words(3, 2), 3);
  EXPECT_EQ(o->num_refs(), 3u);
  EXPECT_EQ(o->size_words(), 8u);
  EXPECT_EQ(o->payload_words(), 3u);  // 8 - 2 header - 3 refs
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(o->ref(i), nullptr);
  EXPECT_FALSE(o->is_marked());
  EXPECT_FALSE(o->is_forwarded());
  o->set_field(0, 0xdeadbeef);
  EXPECT_EQ(o->field(0), 0xdeadbeefu);
}

TEST(ObjectModel, FillerIsRefFreeAndFlagged) {
  Arena arena(4096);
  Obj* f = Obj::init_filler(arena.base(), 6);
  EXPECT_EQ(f->num_refs(), 0u);
  EXPECT_EQ(f->size_words(), 6u);
  EXPECT_TRUE(f->is_filler());
  EXPECT_FALSE(f->is_free_chunk());
}

TEST(ObjectModel, MarkBitIsClaimedExactlyOnce) {
  Arena arena(4096);
  Obj* o = Obj::init(arena.base(), 4, 0);
  EXPECT_TRUE(o->try_mark());
  EXPECT_FALSE(o->try_mark());
  EXPECT_TRUE(o->is_marked());
  o->clear_mark();
  EXPECT_FALSE(o->is_marked());
  EXPECT_TRUE(o->try_mark());
}

TEST(ObjectModel, ForwardAtomicHasSingleWinner) {
  Arena arena(64 * KiB);
  constexpr int kThreads = 4;
  constexpr int kRounds = 200;
  for (int round = 0; round < kRounds; ++round) {
    Obj* src = Obj::init(arena.base(), 4, 0);
    std::vector<Obj*> results(kThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        auto* my_dest = reinterpret_cast<Obj*>(
            arena.base() + 1024 + static_cast<std::size_t>(t) * 64);
        results[static_cast<std::size_t>(t)] = src->forward_atomic(my_dest);
      });
    }
    for (auto& th : threads) th.join();
    // Everyone must agree on the same winner.
    for (int t = 1; t < kThreads; ++t) {
      EXPECT_EQ(results[static_cast<std::size_t>(t)], results[0]);
    }
    EXPECT_EQ(src->forwardee(), results[0]);
  }
}

TEST(ObjectModel, NextInSpaceWalksByShape) {
  Arena arena(4096);
  Obj* a = Obj::init(arena.base(), 4, 1);
  Obj* b = Obj::init(a->end(), 6, 0);
  EXPECT_EQ(a->next_in_space(), b);
  EXPECT_EQ(b->start() - a->start(), 32);
}

TEST(ObjectModel, ChecksumSeesPayloadChanges) {
  Arena arena(4096);
  Obj* o = Obj::init(arena.base(), Obj::shape_words(0, 4), 0);
  for (std::size_t i = 0; i < o->payload_words(); ++i) o->set_field(i, i);
  const auto c1 = object_checksum(o);
  o->set_field(2, 999);
  EXPECT_NE(object_checksum(o), c1);
}

}  // namespace
}  // namespace mgc
