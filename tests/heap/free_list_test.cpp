// Free-list space: allocation, splitting, dark matter, sweep coalescing,
// and the allocate-black discipline.
#include <gtest/gtest.h>

#include "heap/arena.h"
#include "heap/free_list_space.h"
#include "support/units.h"

namespace mgc {
namespace {

struct FlsFixture {
  FlsFixture() : arena(256 * KiB) {
    bot.initialize(arena.base(), 256 * KiB);
    fls.initialize("fls", arena.base(), 256 * KiB, &bot);
    bits.initialize(arena.base(), 256 * KiB);
    fls.set_live_bitmap(&bits);
  }
  Arena arena;
  BlockOffsetTable bot;
  FreeListSpace fls;
  MarkBitmap bits;
};

TEST(FreeListSpace, StartsAsOneChunk) {
  FlsFixture f;
  EXPECT_EQ(f.fls.free_bytes(), 256 * KiB);
  EXPECT_EQ(f.fls.largest_free_chunk(), 256 * KiB);
  int cells = 0;
  f.fls.walk([&](Obj* c) {
    EXPECT_TRUE(c->is_free_chunk());
    ++cells;
  });
  EXPECT_EQ(cells, 1);
}

TEST(FreeListSpace, AllocSplitsAndAccounts) {
  FlsFixture f;
  char* p = f.fls.alloc(1024);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(f.fls.free_bytes(), 256 * KiB - 1024);
  EXPECT_EQ(f.fls.used(), 1024u);
  // The allocated cell is parsable (provisional zero-ref object).
  auto* o = reinterpret_cast<Obj*>(p);
  EXPECT_EQ(o->size_bytes(), 1024u);
  EXPECT_FALSE(o->is_free_chunk());
}

TEST(FreeListSpace, ExhaustionReturnsNull) {
  FlsFixture f;
  std::size_t total = 0;
  while (char* p = f.fls.alloc(8 * KiB)) {
    (void)p;
    total += 8 * KiB;
  }
  EXPECT_EQ(total, 256 * KiB);
  EXPECT_EQ(f.fls.alloc(16), nullptr);
}

TEST(FreeListSpace, FreeChunkReusable) {
  FlsFixture f;
  char* p = f.fls.alloc(4096);
  char* q = f.fls.alloc(4096);
  ASSERT_NE(q, nullptr);
  f.fls.free_chunk(p, 4096);
  EXPECT_EQ(f.fls.alloc(4096), p);  // exact refit
}

TEST(FreeListSpace, SweepCoalescesDeadNeighbours) {
  FlsFixture f;
  // Allocate three adjacent cells, keep only the middle one alive.
  char* a = f.fls.alloc(2048);
  char* b = f.fls.alloc(2048);
  char* c = f.fls.alloc(2048);
  ASSERT_NE(c, nullptr);
  Obj::init(a, 2048 / kWordSize, 0);
  Obj* live = Obj::init(b, 2048 / kWordSize, 0);
  Obj::init(c, 2048 / kWordSize, 0);
  f.bits.clear_all();
  f.bits.mark(live);

  f.fls.begin_sweep();
  std::size_t reclaimed = 0;
  while (f.fls.sweep_step(64, &reclaimed)) {
  }
  f.fls.end_sweep();

  // a and c are free again; the tail chunk absorbed c.
  EXPECT_EQ(f.fls.used(), 2048u);
  EXPECT_EQ(f.fls.free_bytes(), 256 * KiB - 2048);
  // The cell layout is [free(a) | live(b) | free(c..end)].
  std::vector<std::pair<bool, std::size_t>> cells;
  f.fls.walk([&](Obj* o) { cells.push_back({o->is_free_chunk(), o->size_bytes()}); });
  ASSERT_EQ(cells.size(), 3u);
  EXPECT_TRUE(cells[0].first);
  EXPECT_EQ(cells[0].second, 2048u);
  EXPECT_FALSE(cells[1].first);
  EXPECT_TRUE(cells[2].first);
  EXPECT_EQ(cells[2].second, 256 * KiB - 4096);
}

TEST(FreeListSpace, AllocateBlackMarksDuringCycle) {
  FlsFixture f;
  f.bits.clear_all();
  f.fls.set_allocate_black(true);
  char* p = f.fls.alloc(1024);
  EXPECT_TRUE(f.bits.is_marked(p));
  f.fls.set_allocate_black(false);
  char* q = f.fls.alloc(1024);
  EXPECT_FALSE(f.bits.is_marked(q));
}

TEST(FreeListSpace, SweepSpareAllocationsSurvive) {
  // Objects allocated black *during* the sweep must not be reclaimed.
  FlsFixture f;
  f.bits.clear_all();
  f.fls.set_allocate_black(true);
  f.fls.begin_sweep();
  char* p = f.fls.alloc(512);  // allocated mid-sweep, black
  ASSERT_NE(p, nullptr);
  std::size_t reclaimed = 0;
  while (f.fls.sweep_step(16, &reclaimed)) {
  }
  f.fls.end_sweep();
  auto* o = reinterpret_cast<Obj*>(p);
  EXPECT_FALSE(o->is_free_chunk()) << "mid-sweep allocation was reclaimed";
}

TEST(FreeListSpace, ResetAfterCompactRebuildsTail) {
  FlsFixture f;
  (void)f.fls.alloc(64 * KiB);
  (void)f.fls.alloc(64 * KiB);
  char* new_top = f.arena.base() + 32 * KiB;
  Obj::init(f.arena.base(), (32 * KiB) / kWordSize, 0);  // pretend live data
  f.fls.reset_after_compact(new_top);
  EXPECT_EQ(f.fls.free_bytes(), 256 * KiB - 32 * KiB);
  EXPECT_EQ(f.fls.largest_free_chunk(), 256 * KiB - 32 * KiB);
}

TEST(FreeListSpace, DarkMatterIsNotAllocatable) {
  FlsFixture f;
  // Carve so a 16-byte (2-word) remainder appears: alloc capacity-16.
  char* p = f.fls.alloc(256 * KiB - 16);
  ASSERT_NE(p, nullptr);
  // The 16-byte tail is dark matter: counted used, not allocatable.
  EXPECT_EQ(f.fls.free_bytes(), 0u);
  EXPECT_EQ(f.fls.alloc(16), nullptr);
  // But the heap stays parsable: the tail is a filler cell.
  std::size_t fillers = 0;
  f.fls.walk([&](Obj* o) { fillers += o->is_filler(); });
  EXPECT_EQ(fillers, 1u);
}

}  // namespace
}  // namespace mgc
