// Equivalence tests for the word-wise card-table sweep: every scanner
// variant (reference byte loop, visit_dirty, the address-window wrapper,
// and a multi-threaded striped claim like the scavenger's) must visit
// exactly the same card set, at any density and over any window alignment.
// Runs in the stress tier so the TSan CI job exercises the concurrent
// striped scan and the atomic_ref word loads.
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "gc/parallel_work.h"
#include "heap/card_table.h"
#include "support/rng.h"
#include "support/units.h"

namespace mgc {
namespace {

class CardSweepEquivalence : public ::testing::Test {
 protected:
  void SetUp() override {
    // The sweep only reads card bytes; the covered window is never
    // dereferenced, so any non-null aligned base works.
    cards_.initialize(reinterpret_cast<char*>(kCardSize), kCovered);
    n_ = kCovered >> kCardShift;
  }

  // Ground truth: one byte load per card.
  std::vector<std::size_t> byte_sweep(std::size_t first, std::size_t last) {
    std::vector<std::size_t> out;
    for (std::size_t i = first; i < last; ++i) {
      if (cards_.needs_young_scan(i)) out.push_back(i);
    }
    return out;
  }

  std::vector<std::size_t> word_sweep(std::size_t first, std::size_t last) {
    std::vector<std::size_t> out;
    cards_.visit_dirty(first, last, [&](std::size_t i) { out.push_back(i); });
    return out;
  }

  // Seeds a random mix of dirty and precleaned cards; returns the seeded set.
  std::vector<std::size_t> seed_random(Rng& rng, double density) {
    std::vector<std::size_t> seeded;
    for (std::size_t i = 0; i < n_; ++i) {
      if (rng.chance(density)) {
        cards_.dirty_index(i);
        // ~1/3 of the seeded cards also go through the preclean transition:
        // precleaned cards must still be visited by the young-GC sweep.
        if (rng.chance(0.33)) {
          EXPECT_TRUE(cards_.try_preclean(i));
        }
        seeded.push_back(i);
      }
    }
    return seeded;
  }

  static constexpr std::size_t kCovered = 8 * MiB;
  CardTable cards_;
  std::size_t n_ = 0;
};

TEST_F(CardSweepEquivalence, FullTableAtAllDensities) {
  Rng rng(0xcafe01);
  for (const double density : {0.0, 0.003, 0.02, 0.2, 0.7, 1.0}) {
    cards_.clear_all();
    const std::vector<std::size_t> seeded = seed_random(rng, density);
    const std::vector<std::size_t> by_byte = byte_sweep(0, n_);
    ASSERT_EQ(by_byte, seeded) << "density " << density;
    EXPECT_EQ(word_sweep(0, n_), by_byte) << "density " << density;
  }
}

TEST_F(CardSweepEquivalence, UnalignedWindows) {
  Rng rng(0xcafe02);
  seed_random(rng, 0.1);
  // Windows of every alignment flavor: inside one word, word-crossing,
  // word-aligned, empty, and full-table.
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t first = rng.below(n_);
    const std::size_t last = first + rng.below(n_ - first + 1);
    EXPECT_EQ(word_sweep(first, last), byte_sweep(first, last))
        << "[" << first << ", " << last << ")";
  }
  // Degenerate shapes.
  EXPECT_TRUE(word_sweep(5, 5).empty());
  EXPECT_EQ(word_sweep(3, 7), byte_sweep(3, 7));         // within one word
  EXPECT_EQ(word_sweep(7, 9), byte_sweep(7, 9));         // crosses a boundary
  EXPECT_EQ(word_sweep(0, n_), byte_sweep(0, n_));       // full table
  EXPECT_EQ(word_sweep(8, 16), byte_sweep(8, 16));       // exactly one word
}

TEST_F(CardSweepEquivalence, AddressWindowWrapperMatches) {
  Rng rng(0xcafe03);
  seed_random(rng, 0.05);
  char* const base = cards_.covered_base();
  // An address window with ragged edges: starts/ends mid-card.
  char* const from = base + 3 * kCardSize + 17;
  char* const to = base + 1000 * kCardSize + 5;
  std::vector<std::size_t> via_addr;
  cards_.for_each_dirty(from, to,
                        [&](std::size_t i) { via_addr.push_back(i); });
  EXPECT_EQ(via_addr, byte_sweep(cards_.index_of(from),
                                 cards_.index_of(to - 1) + 1));
}

TEST_F(CardSweepEquivalence, StripedParallelClaimVisitsEachCardOnce) {
  Rng rng(0xcafe04);
  const std::vector<std::size_t> seeded = seed_random(rng, 0.04);

  // The scavenger's discovery scheme: workers claim fixed-size card strips
  // through a ChunkClaimer and sweep each strip word-wise.
  constexpr std::size_t kCardsPerStrip = 64;
  constexpr int kThreads = 4;
  ChunkClaimer claimer((n_ + kCardsPerStrip - 1) / kCardsPerStrip, 2);
  std::vector<std::vector<std::size_t>> per_thread(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::size_t b = 0, e = 0;
      while (claimer.claim(&b, &e)) {
        const std::size_t first = b * kCardsPerStrip;
        const std::size_t last = std::min(n_, e * kCardsPerStrip);
        cards_.visit_dirty(first, last, [&](std::size_t i) {
          per_thread[static_cast<std::size_t>(t)].push_back(i);
        });
      }
    });
  }
  for (auto& t : threads) t.join();

  std::vector<std::size_t> merged;
  for (const auto& v : per_thread) merged.insert(merged.end(), v.begin(), v.end());
  std::sort(merged.begin(), merged.end());
  EXPECT_EQ(merged, seeded);  // every card exactly once, none missed
}

TEST_F(CardSweepEquivalence, ClearRangeClearsExactlyTheRange) {
  cards_.clear_all();
  char* const base = cards_.covered_base();
  // Dirty a window plus one guard card on each side, then clear the window.
  const std::size_t lo = 37, hi = 1003;  // deliberately word-unaligned
  for (std::size_t i = lo - 1; i <= hi + 1; ++i) cards_.dirty_index(i);
  cards_.clear_range(base + lo * kCardSize, base + hi * kCardSize);
  EXPECT_TRUE(cards_.needs_young_scan(lo - 1));
  for (std::size_t i = lo; i < hi; ++i) {
    ASSERT_FALSE(cards_.needs_young_scan(i)) << "card " << i;
  }
  EXPECT_TRUE(cards_.needs_young_scan(hi));  // `to` is exclusive
  EXPECT_TRUE(cards_.needs_young_scan(hi + 1));
}

}  // namespace
}  // namespace mgc
