// G1 region manager: typed allocation, humongous runs, recycling, rsets.
#include <gtest/gtest.h>

#include "heap/arena.h"
#include "heap/mark_bitmap.h"
#include "heap/region.h"
#include "support/units.h"

namespace mgc {
namespace {

struct RmFixture {
  RmFixture() : arena(1 * MiB) { rm.initialize(arena.base(), 1 * MiB, 64 * KiB); }
  Arena arena;
  RegionManager rm;
};

TEST(RegionManager, GeometryAndLookup) {
  RmFixture f;
  EXPECT_EQ(f.rm.num_regions(), 16u);
  EXPECT_EQ(f.rm.free_region_count(), 16u);
  Region* r0 = f.rm.region_of(f.arena.base());
  EXPECT_EQ(r0->index, 0u);
  Region* r1 = f.rm.region_of(f.arena.base() + 64 * KiB + 8);
  EXPECT_EQ(r1->index, 1u);
  EXPECT_TRUE(r1->contains(f.arena.base() + 64 * KiB + 8));
}

TEST(RegionManager, AllocatePrefersLowAddressesAndRecycles) {
  RmFixture f;
  Region* a = f.rm.allocate_region(RegionType::kEden);
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->index, 0u);
  EXPECT_EQ(a->type(), RegionType::kEden);
  EXPECT_EQ(f.rm.free_region_count(), 15u);
  char* p = a->par_alloc(128);
  EXPECT_EQ(p, a->base);
  EXPECT_EQ(a->used(), 128u);
  f.rm.free_region(a);
  EXPECT_TRUE(a->is_free());
  EXPECT_EQ(a->used(), 0u);
  EXPECT_EQ(f.rm.free_region_count(), 16u);
}

TEST(RegionManager, ExhaustionReturnsNull) {
  RmFixture f;
  for (int i = 0; i < 16; ++i) {
    EXPECT_NE(f.rm.allocate_region(RegionType::kOld), nullptr);
  }
  EXPECT_EQ(f.rm.allocate_region(RegionType::kOld), nullptr);
}

TEST(RegionManager, HumongousNeedsContiguousRun) {
  RmFixture f;
  // Occupy regions 0 and 2, leaving 1 free: a 2-region run must start at 3.
  Region* r0 = f.rm.allocate_region(RegionType::kOld);
  Region* r1 = f.rm.allocate_region(RegionType::kOld);
  Region* r2 = f.rm.allocate_region(RegionType::kOld);
  ASSERT_EQ(r2->index, 2u);
  f.rm.free_region(r1);
  Region* h = f.rm.allocate_humongous(2);
  ASSERT_NE(h, nullptr);
  EXPECT_GE(h->index, 3u);
  EXPECT_EQ(h->type(), RegionType::kHumongousHead);
  Region& cont = f.rm.region_at(h->index + 1);
  EXPECT_EQ(cont.type(), RegionType::kHumongousCont);
  EXPECT_EQ(cont.humongous_head, h);
  (void)r0;
}

TEST(RegionManager, RebuildKeepsOnlySelected) {
  RmFixture f;
  Region* keep = f.rm.allocate_region(RegionType::kOld);
  Region* drop = f.rm.allocate_region(RegionType::kOld);
  (void)drop->par_alloc(64);
  f.rm.rebuild([&](Region& r) { return &r == keep; });
  EXPECT_EQ(f.rm.free_region_count(), 15u);
  EXPECT_EQ(keep->type(), RegionType::kOld);
  EXPECT_TRUE(drop->is_free());
  EXPECT_EQ(drop->used(), 0u);
}

TEST(RememberedSetTest, AddContainsSnapshotClear) {
  RememberedSet rs;
  EXPECT_EQ(rs.size(), 0u);
  rs.add_card(7);
  rs.add_card(7);
  rs.add_card(12);
  EXPECT_EQ(rs.size(), 2u);
  EXPECT_TRUE(rs.contains(7));
  EXPECT_FALSE(rs.contains(8));
  auto snap = rs.snapshot();
  std::sort(snap.begin(), snap.end());
  EXPECT_EQ(snap, (std::vector<std::uint32_t>{7, 12}));
  rs.clear();
  EXPECT_EQ(rs.size(), 0u);
}

TEST(MarkBitmapTest, MarkClaimClear) {
  Arena a(64 * KiB);
  MarkBitmap bm;
  bm.initialize(a.base(), 64 * KiB);
  char* p = a.base() + 512;
  EXPECT_FALSE(bm.is_marked(p));
  EXPECT_TRUE(bm.try_mark(p));
  EXPECT_FALSE(bm.try_mark(p));
  EXPECT_TRUE(bm.is_marked(p));
  // Neighbouring granules are independent.
  EXPECT_FALSE(bm.is_marked(p + kObjAlignment));
  bm.clear_all();
  EXPECT_FALSE(bm.is_marked(p));
}

}  // namespace
}  // namespace mgc
