// Card table unit coverage: state transitions the write barrier and the
// collectors rely on (dirty -> precleaned -> re-dirtied), range clear/dirty
// boundary semantics, and the concurrent marking path (many threads
// dirtying cards while a reader precleans).
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "heap/card_table.h"
#include "heap/layout.h"
#include "support/units.h"

namespace mgc {
namespace {

class CardTableTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kBytes = 64 * KiB;  // 128 cards

  void SetUp() override {
    backing_.resize(kBytes + kCardSize);
    // Align the covered base to a card boundary so index arithmetic in the
    // tests is exact.
    auto addr = reinterpret_cast<std::uintptr_t>(backing_.data());
    base_ = reinterpret_cast<char*>((addr + kCardSize - 1) & ~(kCardSize - 1));
    cards_.initialize(base_, kBytes);
  }

  std::vector<char> backing_;
  char* base_ = nullptr;
  CardTable cards_;
};

TEST_F(CardTableTest, InitializesClean) {
  ASSERT_GE(cards_.num_cards(), kBytes >> kCardShift);
  for (std::size_t i = 0; i < kBytes >> kCardShift; ++i) {
    EXPECT_FALSE(cards_.is_dirty(i));
    EXPECT_FALSE(cards_.needs_young_scan(i));
  }
  EXPECT_EQ(cards_.count_dirty(base_, base_ + kBytes), 0u);
}

TEST_F(CardTableTest, DirtyAddressMapsToSingleCard) {
  char* slot = base_ + 3 * kCardSize + 40;
  cards_.dirty(slot);
  EXPECT_TRUE(cards_.is_dirty(3));
  EXPECT_FALSE(cards_.is_dirty(2));
  EXPECT_FALSE(cards_.is_dirty(4));
  EXPECT_EQ(cards_.index_of(slot), 3u);
  EXPECT_EQ(cards_.card_base(3), base_ + 3 * kCardSize);
  EXPECT_EQ(cards_.card_end(3), base_ + 4 * kCardSize);
}

TEST_F(CardTableTest, DirtyCleanTransitions) {
  cards_.dirty_index(5);
  EXPECT_TRUE(cards_.is_dirty(5));
  EXPECT_TRUE(cards_.needs_young_scan(5));
  cards_.clear_index(5);
  EXPECT_FALSE(cards_.is_dirty(5));
  EXPECT_FALSE(cards_.needs_young_scan(5));
}

TEST_F(CardTableTest, PrecleanOnlySucceedsOnDirtyCards) {
  // Clean card: nothing to preclean.
  EXPECT_FALSE(cards_.try_preclean(7));
  EXPECT_FALSE(cards_.needs_young_scan(7));

  // Dirty -> precleaned: no longer "dirty" (remark may skip it) but still
  // needs a young-GC scan.
  cards_.dirty_index(7);
  EXPECT_TRUE(cards_.try_preclean(7));
  EXPECT_FALSE(cards_.is_dirty(7));
  EXPECT_TRUE(cards_.needs_young_scan(7));

  // Second preclean fails (already precleaned)...
  EXPECT_FALSE(cards_.try_preclean(7));

  // ...until a barrier write re-dirties the card — the re-dirty remark
  // looks for.
  cards_.dirty_index(7);
  EXPECT_TRUE(cards_.is_dirty(7));
  EXPECT_TRUE(cards_.try_preclean(7));
}

TEST_F(CardTableTest, DirtyRangeCoversPartialEdgeCards) {
  // [mid of card 2, mid of card 5): edge cards must be included.
  cards_.dirty_range(base_ + 2 * kCardSize + 100, base_ + 5 * kCardSize + 1);
  EXPECT_FALSE(cards_.needs_young_scan(1));
  for (std::size_t i = 2; i <= 5; ++i) EXPECT_TRUE(cards_.is_dirty(i));
  EXPECT_FALSE(cards_.needs_young_scan(6));
  EXPECT_EQ(cards_.count_dirty(base_, base_ + kBytes), 4u);
}

TEST_F(CardTableTest, DirtyRangeExclusiveEndOnCardBoundary) {
  // `to` exactly on a card boundary: that card is NOT part of the range.
  cards_.dirty_range(base_ + 2 * kCardSize, base_ + 4 * kCardSize);
  EXPECT_TRUE(cards_.is_dirty(2));
  EXPECT_TRUE(cards_.is_dirty(3));
  EXPECT_FALSE(cards_.needs_young_scan(4));

  // Empty and inverted ranges are no-ops.
  cards_.dirty_range(base_ + kCardSize, base_ + kCardSize);
  EXPECT_FALSE(cards_.needs_young_scan(1));
  cards_.dirty_range(base_ + 2 * kCardSize, base_ + kCardSize);
  EXPECT_FALSE(cards_.needs_young_scan(1));
}

TEST_F(CardTableTest, ClearRangeLeavesNeighboursDirty) {
  cards_.dirty_range(base_, base_ + 10 * kCardSize);
  // Clearing [card 3, card 7) must not touch cards 2 and 7.
  cards_.clear_range(base_ + 3 * kCardSize, base_ + 7 * kCardSize);
  EXPECT_TRUE(cards_.is_dirty(2));
  for (std::size_t i = 3; i <= 6; ++i) EXPECT_FALSE(cards_.needs_young_scan(i));
  EXPECT_TRUE(cards_.is_dirty(7));
  EXPECT_EQ(cards_.count_dirty(base_, base_ + 10 * kCardSize), 6u);
}

TEST_F(CardTableTest, ClearRangeAlsoClearsPrecleanedCards) {
  cards_.dirty_index(4);
  ASSERT_TRUE(cards_.try_preclean(4));
  cards_.clear_range(cards_.card_base(4), cards_.card_end(4));
  EXPECT_FALSE(cards_.needs_young_scan(4));
}

TEST_F(CardTableTest, ForEachDirtyVisitsDirtyAndPrecleaned) {
  cards_.dirty_index(1);
  cards_.dirty_index(4);
  ASSERT_TRUE(cards_.try_preclean(4));
  cards_.dirty_index(9);

  std::vector<std::size_t> visited;
  cards_.for_each_dirty(base_, base_ + kBytes,
                        [&](std::size_t i) { visited.push_back(i); });
  EXPECT_EQ(visited, (std::vector<std::size_t>{1, 4, 9}));

  // Window excludes card 9 (end is exclusive at its base).
  visited.clear();
  cards_.for_each_dirty(base_, cards_.card_base(9),
                        [&](std::size_t i) { visited.push_back(i); });
  EXPECT_EQ(visited, (std::vector<std::size_t>{1, 4}));
}

TEST_F(CardTableTest, ClearAllResetsEverything) {
  cards_.dirty_range(base_, base_ + kBytes);
  cards_.clear_all();
  EXPECT_EQ(cards_.count_dirty(base_, base_ + kBytes), 0u);
}

// Concurrent marking: writers race dirty() against a precleaning reader.
// Postconditions checked: every card a writer dirtied ends non-clean (the
// young-GC invariant — precleaning never loses a card), and try_preclean
// claims each dirty card exactly once per dirty->precleaned edge.
TEST_F(CardTableTest, ConcurrentDirtyAndPrecleanNeverLosesACard) {
  constexpr int kWriters = 4;
  constexpr int kRoundsPerWriter = 2000;
  const std::size_t ncards = kBytes >> kCardShift;

  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&, t] {
      // Each writer owns a disjoint quarter of the cards.
      const std::size_t lo = t * (ncards / kWriters);
      const std::size_t hi = lo + ncards / kWriters;
      for (int r = 0; r < kRoundsPerWriter; ++r) {
        for (std::size_t i = lo; i < hi; ++i) {
          cards_.dirty(base_ + i * kCardSize + (r % kCardSize));
        }
      }
    });
  }
  // Concurrent precleaner sweeping the whole table.
  std::size_t precleaned = 0;
  std::thread cleaner([&] {
    for (int sweep = 0; sweep < 200; ++sweep) {
      for (std::size_t i = 0; i < ncards; ++i) {
        if (cards_.try_preclean(i)) ++precleaned;
      }
    }
  });
  for (auto& w : writers) w.join();
  cleaner.join();

  EXPECT_GT(precleaned, 0u);
  // Final barrier pass after the cleaner stopped: all written cards must
  // need a young scan regardless of how the races interleaved.
  for (std::size_t i = 0; i < ncards; ++i) {
    cards_.dirty_index(i);
  }
  EXPECT_EQ(cards_.count_dirty(base_, base_ + kBytes), ncards);
}

TEST(ModUnionTable, RecordsAccumulateUntilCleared) {
  ModUnionTable mu;
  mu.initialize(32);
  EXPECT_FALSE(mu.is_set(3));
  mu.record(3);
  mu.record(31);
  EXPECT_TRUE(mu.is_set(3));
  EXPECT_TRUE(mu.is_set(31));
  EXPECT_FALSE(mu.is_set(4));
  // Re-record is idempotent; clear resets all bits.
  mu.record(3);
  EXPECT_TRUE(mu.is_set(3));
  mu.clear();
  EXPECT_FALSE(mu.is_set(3));
  EXPECT_FALSE(mu.is_set(31));
}

}  // namespace
}  // namespace mgc
