// Contiguous spaces, arena alignment, block-offset table, and card table.
#include <gtest/gtest.h>

#include <thread>

#include "heap/arena.h"
#include "support/units.h"
#include "heap/block_offset_table.h"
#include "heap/card_table.h"
#include "heap/contiguous_space.h"

namespace mgc {
namespace {

TEST(Arena, BaseIsObjectAligned) {
  for (std::size_t sz : {1024ul, 4097ul, 1048576ul}) {
    Arena a(sz);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a.base()) % kObjAlignment, 0u);
    EXPECT_GE(static_cast<std::size_t>(a.end() - a.base()), sz);
    EXPECT_TRUE(a.contains(a.base()));
    EXPECT_FALSE(a.contains(a.end()));
  }
}

TEST(ContiguousSpace, BumpAllocationAndReset) {
  Arena a(64 * KiB);
  ContiguousSpace s;
  s.initialize("test", a.base(), 64 * KiB);
  EXPECT_EQ(s.used(), 0u);
  char* p1 = s.par_alloc(128);
  char* p2 = s.par_alloc(256);
  ASSERT_NE(p1, nullptr);
  ASSERT_NE(p2, nullptr);
  EXPECT_EQ(p2 - p1, 128);
  EXPECT_EQ(s.used(), 384u);
  EXPECT_TRUE(s.contains(p1));
  s.reset();
  EXPECT_EQ(s.used(), 0u);
  EXPECT_EQ(s.par_alloc(16), p1);  // reuses from base
}

TEST(ContiguousSpace, FailsWhenFull) {
  Arena a(1024);
  ContiguousSpace s;
  s.initialize("tiny", a.base(), 1024);
  EXPECT_NE(s.par_alloc(1024), nullptr);
  EXPECT_EQ(s.par_alloc(16), nullptr);
  EXPECT_EQ(s.free_bytes(), 0u);
}

TEST(ContiguousSpace, ParallelAllocationsDoNotOverlap) {
  Arena a(1 * MiB);
  ContiguousSpace s;
  s.initialize("par", a.base(), 1 * MiB);
  constexpr int kThreads = 4;
  constexpr int kAllocs = 1000;
  std::vector<std::vector<char*>> per_thread(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kAllocs; ++i) {
        char* p = s.par_alloc(64);
        ASSERT_NE(p, nullptr);
        per_thread[static_cast<std::size_t>(t)].push_back(p);
      }
    });
  }
  for (auto& th : threads) th.join();
  std::vector<char*> all;
  for (auto& v : per_thread) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_GE(all[i] - all[i - 1], 64);
  }
}

TEST(ContiguousSpace, WalkVisitsEveryCell) {
  Arena a(64 * KiB);
  ContiguousSpace s;
  s.initialize("walk", a.base(), 64 * KiB);
  for (int i = 0; i < 10; ++i) {
    char* p = s.par_alloc(words_to_bytes(4 + 2 * (i % 3)));
    Obj::init(p, 4 + 2 * (i % 3), 0);
  }
  int count = 0;
  s.walk([&](Obj*) { ++count; });
  EXPECT_EQ(count, 10);
}

TEST(BlockOffsetTable, ResolvesCellCoveringAnyAddress) {
  Arena a(64 * KiB);
  BlockOffsetTable bot;
  bot.initialize(a.base(), 64 * KiB);
  // Lay out three objects: small, card-spanning, small.
  Obj* o1 = Obj::init(a.base(), 8, 0);
  bot.record_block(o1->start(), o1->end());
  Obj* o2 = Obj::init(o1->end(), 256, 0);  // 2 KiB: spans 4 cards
  bot.record_block(o2->start(), o2->end());
  Obj* o3 = Obj::init(o2->end(), 8, 0);
  bot.record_block(o3->start(), o3->end());

  EXPECT_EQ(bot.cell_covering(o1->start()), o1);
  EXPECT_EQ(bot.cell_covering(o2->start() + 1000), o2);
  EXPECT_EQ(bot.cell_covering(o2->end() - 1), o2);
  EXPECT_EQ(bot.cell_covering(o3->start() + 8), o3);
}

TEST(CardTable, DirtyAndScanRanges) {
  Arena a(64 * KiB);
  CardTable ct;
  ct.initialize(a.base(), 64 * KiB);
  EXPECT_EQ(ct.count_dirty(a.base(), a.end()), 0u);
  ct.dirty(a.base() + 100);
  ct.dirty(a.base() + 5000);
  EXPECT_EQ(ct.count_dirty(a.base(), a.end()), 2u);
  EXPECT_TRUE(ct.is_dirty(ct.index_of(a.base() + 100)));
  ct.clear_index(ct.index_of(a.base() + 100));
  EXPECT_EQ(ct.count_dirty(a.base(), a.end()), 1u);
  ct.dirty_range(a.base() + 1024, a.base() + 3072);  // 4 cards
  EXPECT_EQ(ct.count_dirty(a.base() + 1024, a.base() + 3072), 4u);
  ct.clear_all();
  EXPECT_EQ(ct.count_dirty(a.base(), a.end()), 0u);
}

TEST(CardTable, PrecleanTransitions) {
  Arena a(8 * KiB);
  CardTable ct;
  ct.initialize(a.base(), 8 * KiB);
  const std::size_t idx = ct.index_of(a.base());
  // Clean cards cannot be precleaned.
  EXPECT_FALSE(ct.try_preclean(idx));
  ct.dirty_index(idx);
  EXPECT_TRUE(ct.try_preclean(idx));
  EXPECT_FALSE(ct.is_dirty(idx));           // no longer *dirty*...
  EXPECT_TRUE(ct.needs_young_scan(idx));    // ...but still needs a young scan
  // A barrier write re-dirties a precleaned card.
  ct.dirty_index(idx);
  EXPECT_TRUE(ct.is_dirty(idx));
}

TEST(ModUnion, RecordsAcrossClears) {
  ModUnionTable mu;
  mu.initialize(64);
  EXPECT_FALSE(mu.is_set(10));
  mu.record(10);
  EXPECT_TRUE(mu.is_set(10));
  mu.clear();
  EXPECT_FALSE(mu.is_set(10));
}

}  // namespace
}  // namespace mgc
