#include <gtest/gtest.h>
#include "support/stats.h"
TEST(Stats, MeanAndRsd) {
  mgc::RunningStats s;
  for (double x : {1.0, 2.0, 3.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  EXPECT_NEAR(s.stddev(), 1.0, 1e-12);
  EXPECT_NEAR(s.rsd_percent(), 50.0, 1e-9);
}
