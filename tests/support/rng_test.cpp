// RNG and distribution tests: determinism, bounds, and the zipfian skew
// the YCSB workload depends on.
#include <gtest/gtest.h>

#include <map>

#include "support/rng.h"

namespace mgc {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
  bool all_equal = true;
  Rng a2(123);
  for (int i = 0; i < 100; ++i) all_equal &= (a2.next() == c.next());
  EXPECT_FALSE(all_equal);
}

TEST(Rng, BelowStaysInBounds) {
  Rng r(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(r.below(bound), bound);
    }
  }
}

TEST(Rng, InRangeInclusive) {
  Rng r(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.in_range(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    saw_lo |= v == 5;
    saw_hi |= v == 8;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UnitInHalfOpenInterval) {
  Rng r(11);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ChanceRoughlyCalibrated) {
  Rng r(13);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += r.chance(0.25);
  EXPECT_NEAR(hits / 100000.0, 0.25, 0.01);
}

TEST(Zipfian, IsHeavilySkewedTowardsLowRanks) {
  Rng r(17);
  Zipfian z(10000);
  std::size_t top10 = 0;
  constexpr int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i) {
    if (z.sample(r) < 10) ++top10;
  }
  // The top-10 ranks hold ~30% of zipf(0.99) mass over 10k items.
  EXPECT_GT(top10, kSamples / 5);
  EXPECT_LT(top10, kSamples * 4 / 5);
}

TEST(Zipfian, CoversTheKeySpace) {
  Rng r(19);
  Zipfian z(100);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 100000; ++i) ++counts[z.sample(r)];
  for (const auto& [k, n] : counts) EXPECT_LT(k, 100u);
  EXPECT_GT(counts.size(), 90u) << "most keys should appear";
}

TEST(ScrambledZipfian, SpreadsHotKeysAcrossTheSpace) {
  Rng r(23);
  ScrambledZipfian z(100000);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 20000; ++i) {
    const auto k = z.sample(r);
    EXPECT_LT(k, 100000u);
    ++counts[k];
  }
  // Find the hottest key: it should NOT be key 0 (scrambling moved it) and
  // should still be clearly hot (zipf skew preserved).
  std::uint64_t hottest = 0;
  int max_count = 0;
  for (const auto& [k, n] : counts) {
    if (n > max_count) {
      max_count = n;
      hottest = k;
    }
  }
  EXPECT_GT(max_count, 500);
  EXPECT_NE(hottest, 0u);
}

}  // namespace
}  // namespace mgc
