// Runtime lock-rank registry: the dynamic half of the concurrency
// discipline (tools/gclint's lock-order pass is the static half; both
// read the rank table in support/lock_rank.h). The positive tests assert
// that every legal nesting pattern the runtime uses stays silent; the
// death tests inject the inversions the registry exists to catch and
// require it to die loudly at the exact acquisition.
#include "support/lock_rank.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "support/mutex.h"
#include "support/spinlock.h"

namespace mgc {
namespace {

// Forces validation on for the body of a test regardless of build type
// (tier-1 is NDEBUG, where the registry defaults off) and restores the
// previous state afterwards so coexisting tests see their default.
class ScopedRankValidation {
 public:
  ScopedRankValidation() : was_(lockrank::enabled()) {
    lockrank::set_enabled(true);
  }
  ~ScopedRankValidation() { lockrank::set_enabled(was_); }

 private:
  bool was_;
};

TEST(LockRankRegistry, AscendingAcquisitionIsSilent) {
  ScopedRankValidation v;
  Mutex outer(LockRank::kKvShard, "test-shard");
  Mutex mid(LockRank::kCommitLog, "test-log");
  SpinLock inner(LockRank::kRemSet, "test-remset");
  MutexLock a(outer);
  MutexLock b(mid);
  {
    SpinLockGuard c(inner);
    EXPECT_EQ(lockrank::held_count(), 3);
  }
  EXPECT_EQ(lockrank::held_count(), 2);
}

TEST(LockRankRegistry, UnrankedLocksNeverRegister) {
  ScopedRankValidation v;
  Mutex plain;  // kUnranked
  MutexLock g(plain);
  EXPECT_EQ(lockrank::held_count(), 0);
}

TEST(LockRankRegistry, ReleaseOutOfStackOrderIsTolerated) {
  ScopedRankValidation v;
  Mutex a(LockRank::kKvShard, "a");
  Mutex b(LockRank::kCommitLog, "b");
  a.lock();
  b.lock();
  a.unlock();  // not LIFO: condition-wait re-lock patterns do this
  EXPECT_EQ(lockrank::held_count(), 1);
  b.unlock();
  EXPECT_EQ(lockrank::held_count(), 0);
}

TEST(LockRankRegistry, SameRankStripesAllowAscendingAddressOrder) {
  ScopedRankValidation v;
  // AllStripesLock's pattern: same rank, ascending address.
  std::vector<Mutex> stripes(4);
  for (auto& s : stripes) s.set_rank(LockRank::kMemtableStripe, "stripe");
  for (auto& s : stripes) s.lock();
  EXPECT_EQ(lockrank::held_count(), 4);
  for (auto& s : stripes) s.unlock();
}

TEST(LockRankRegistry, TryLockIsExemptFromOrdering) {
  ScopedRankValidation v;
  // The commit log's pressure hook try_locks the commit-log mutex while
  // arbitrary (higher-ranked) locks are held; a would-be inversion must
  // simply record, not die.
  Mutex high(LockRank::kGcLog, "test-high");
  Mutex low(LockRank::kCommitLog, "test-low");
  MutexLock g(high);
  ASSERT_TRUE(low.try_lock());
  EXPECT_EQ(lockrank::held_count(), 2);
  low.unlock();
}

TEST(LockRankRegistry, HeldStacksAreThreadLocal) {
  ScopedRankValidation v;
  Mutex a(LockRank::kKvShard, "a");
  MutexLock g(a);
  int other_depth = -1;
  std::thread t([&] { other_depth = lockrank::held_count(); });
  t.join();
  EXPECT_EQ(other_depth, 0);
  EXPECT_EQ(lockrank::held_count(), 1);
}

TEST(LockRankRegistry, RankNamesCoverTheTable) {
  EXPECT_STREQ(lockrank::rank_name(LockRank::kSafepoint), "safepoint");
  EXPECT_STREQ(lockrank::rank_name(LockRank::kMemtableStripe),
               "memtable-stripe");
  EXPECT_STREQ(lockrank::rank_name(LockRank::kNetSink), "net-sink");
  EXPECT_STREQ(lockrank::rank_name(LockRank::kUnranked), "unranked");
}

using LockRankDeath = ::testing::Test;

TEST(LockRankDeath, InversionDiesWithBothLockNames) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        lockrank::set_enabled(true);
        Mutex inner(LockRank::kRemSet, "death-inner");
        Mutex outer(LockRank::kKvShard, "death-outer");
        MutexLock a(inner);
        MutexLock b(outer);  // rank 30 under rank 210: inversion
      },
      "lock-rank violation.*death-outer.*death-inner");
}

TEST(LockRankDeath, SameRankNonStripeDies) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        lockrank::set_enabled(true);
        Mutex a(LockRank::kGcLog, "death-a");
        Mutex b(LockRank::kGcLog, "death-b");
        MutexLock ga(a);
        MutexLock gb(b);  // same rank, not a stripe rank
      },
      "lock-rank violation");
}

TEST(LockRankDeath, StripeDescendingAddressDies) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        lockrank::set_enabled(true);
        std::vector<Mutex> stripes(2);
        for (auto& s : stripes)
          s.set_rank(LockRank::kMemtableStripe, "death-stripe");
        stripes[1].lock();
        stripes[0].lock();  // descending address: deadlocks against the
                            // ascending walk, so the registry dies
      },
      "lock-rank violation");
}

TEST(LockRankDeath, SpinLockInversionDies) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        lockrank::set_enabled(true);
        SpinLock inner(LockRank::kPromotedList, "death-spin-inner");
        SpinLock outer(LockRank::kEvacAlloc, "death-spin-outer");
        SpinLockGuard a(inner);
        SpinLockGuard b(outer);
      },
      "lock-rank violation");
}

}  // namespace
}  // namespace mgc
