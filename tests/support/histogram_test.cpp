#include <gtest/gtest.h>

#include "support/histogram.h"

namespace mgc {
namespace {

TEST(Histogram, BasicCountsAndExtrema) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  h.add(10);
  h.add(1000);
  h.add(5);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.min(), 5u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_NEAR(h.mean(), (10 + 1000 + 5) / 3.0, 1e-9);
}

TEST(Histogram, PercentileBoundsRelativeError) {
  Histogram h(/*sub_bucket_bits=*/7);  // <1% relative error
  for (std::uint64_t v = 1; v <= 10000; ++v) h.add(v);
  const std::uint64_t p50 = h.percentile(50);
  const std::uint64_t p99 = h.percentile(99);
  EXPECT_NEAR(static_cast<double>(p50), 5000.0, 5000.0 * 0.02);
  EXPECT_NEAR(static_cast<double>(p99), 9900.0, 9900.0 * 0.02);
  EXPECT_EQ(h.percentile(100), 10000u);
  EXPECT_LE(h.percentile(0), h.percentile(100));
}

TEST(Histogram, MergeAddsUp) {
  Histogram a, b;
  for (int i = 0; i < 100; ++i) a.add(10);
  for (int i = 0; i < 50; ++i) b.add(1000000);
  a.merge(b);
  EXPECT_EQ(a.count(), 150u);
  EXPECT_EQ(a.min(), 10u);
  EXPECT_EQ(a.max(), 1000000u);
}

TEST(Histogram, CountAboveAndBetween) {
  Histogram h;
  for (int i = 0; i < 10; ++i) h.add(100);
  for (int i = 0; i < 5; ++i) h.add(100000);
  EXPECT_EQ(h.count_above(10000), 5u);
  EXPECT_EQ(h.count_above(10000000), 0u);
  EXPECT_GE(h.count_between(50, 200), 10u);
}

TEST(Histogram, ClearResets) {
  Histogram h;
  h.add(42);
  h.clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(99), 0u);
}

TEST(Histogram, HugeValuesDoNotOverflow) {
  Histogram h;
  h.add(~0ull);
  h.add(1);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.max(), ~0ull);
}

}  // namespace
}  // namespace mgc
