// Unit tests for the deterministic fault-injection framework: policy
// mechanics (probability / after / limit / oneshot), replay determinism of
// the seeded fire schedule, spec parsing, and the scoped helpers.
#include <gtest/gtest.h>

#include "support/fault.h"

namespace mgc::fault {
namespace {

// Every test leaves the global registry clean; this guards against a
// failing EXPECT leaking an armed site into later tests in this binary.
class FaultFramework : public ::testing::Test {
 protected:
  void SetUp() override { disarm_all(); }
  void TearDown() override { disarm_all(); }
};

TEST_F(FaultFramework, UnarmedSitesNeverFireAndCountNothing) {
  for (std::size_t i = 0; i < kNumSites; ++i) {
    const Site s = static_cast<Site>(i);
    EXPECT_FALSE(should_fire(s)) << site_name(s);
    EXPECT_EQ(check_count(s), 0u) << site_name(s);
  }
}

TEST_F(FaultFramework, AfterAndLimitBoundTheFireWindow) {
  Policy p;
  p.after = 2;
  p.limit = 3;
  arm(Site::kNetEpipe, p);
  std::vector<std::uint64_t> fired;
  for (std::uint64_t n = 0; n < 10; ++n) {
    if (should_fire(Site::kNetEpipe)) fired.push_back(n);
  }
  EXPECT_EQ(fired, (std::vector<std::uint64_t>{2, 3, 4}));
  EXPECT_EQ(check_count(Site::kNetEpipe), 10u);
  EXPECT_EQ(fire_count(Site::kNetEpipe), 3u);
  EXPECT_EQ(fired_checks(Site::kNetEpipe),
            (std::vector<std::uint64_t>{2, 3, 4}));
}

TEST_F(FaultFramework, OneshotFiresExactlyOnce) {
  Policy p;
  p.limit = 1;
  arm(Site::kPromotionFail, p);
  int fires = 0;
  for (int n = 0; n < 20; ++n) {
    if (should_fire(Site::kPromotionFail)) ++fires;
  }
  EXPECT_EQ(fires, 1);
}

TEST_F(FaultFramework, ProbabilityScheduleReplaysUnderTheSameSeed) {
  auto run = [](std::uint64_t seed_v) {
    disarm_all();
    set_seed(seed_v);
    Policy p;
    p.probability = 0.3;
    arm(Site::kCommitLogWrite, p);
    for (int n = 0; n < 200; ++n) (void)should_fire(Site::kCommitLogWrite);
    return fired_checks(Site::kCommitLogWrite);
  };
  const auto a = run(7);
  const auto b = run(7);
  const auto c = run(8);
  EXPECT_FALSE(a.empty()) << "p=0.3 over 200 checks must fire sometimes";
  EXPECT_LT(a.size(), 200u) << "p=0.3 must not fire on every check";
  EXPECT_EQ(a, b) << "same seed, same spec => same fire schedule";
  EXPECT_NE(a, c) << "the seed must steer the schedule";
}

TEST_F(FaultFramework, DisarmAllResetsCountersAndSchedules) {
  arm(Site::kNetAccept);
  ASSERT_TRUE(should_fire(Site::kNetAccept));
  disarm_all();
  EXPECT_FALSE(should_fire(Site::kNetAccept));
  EXPECT_EQ(check_count(Site::kNetAccept), 0u);
  EXPECT_EQ(fire_count(Site::kNetAccept), 0u);
}

TEST_F(FaultFramework, SiteNamesRoundTrip) {
  for (std::size_t i = 0; i < kNumSites; ++i) {
    const Site s = static_cast<Site>(i);
    Site parsed{};
    EXPECT_TRUE(parse_site(site_name(s), &parsed)) << site_name(s);
    EXPECT_EQ(parsed, s);
  }
  Site ignored{};
  EXPECT_FALSE(parse_site("no-such-site", &ignored));
}

TEST_F(FaultFramework, ParseSpecArmsEveryClause) {
  std::string err;
  ASSERT_TRUE(parse_spec("promotion-fail:after=3:oneshot;net-epipe=0.5;"
                         "tlab-refill=0:limit=9",
                         &err))
      << err;
  // promotion-fail: eligible from check 3, once.
  EXPECT_FALSE(should_fire(Site::kPromotionFail));
  EXPECT_FALSE(should_fire(Site::kPromotionFail));
  EXPECT_FALSE(should_fire(Site::kPromotionFail));
  EXPECT_TRUE(should_fire(Site::kPromotionFail));
  EXPECT_FALSE(should_fire(Site::kPromotionFail));
  // probability 0 is armed but never fires (counts checks, though).
  for (int n = 0; n < 50; ++n) EXPECT_FALSE(should_fire(Site::kTlabRefill));
  EXPECT_EQ(check_count(Site::kTlabRefill), 50u);
}

TEST_F(FaultFramework, MalformedSpecsAreRejectedWithAnError) {
  for (const char* bad : {"no-such-site", "net-epipe=1.5", "net-epipe=x",
                          "promotion-fail:bogus", "promotion-fail:after=q"}) {
    std::string err;
    EXPECT_FALSE(parse_spec(bad, &err)) << bad;
    EXPECT_FALSE(err.empty()) << bad;
    disarm_all();
  }
}

TEST_F(FaultFramework, ScopedPolicyFiresOnlyOnMatchingScope) {
  Policy p;
  p.scope = 2;
  arm(Site::kKvShardQueueFull, p);
  // Only shard 2's checks fire; other shards and unscoped checks pass.
  EXPECT_FALSE(should_fire(Site::kKvShardQueueFull, 0));
  EXPECT_FALSE(should_fire(Site::kKvShardQueueFull, 1));
  EXPECT_TRUE(should_fire(Site::kKvShardQueueFull, 2));
  EXPECT_FALSE(should_fire(Site::kKvShardQueueFull, 3));
  EXPECT_FALSE(should_fire(Site::kKvShardQueueFull));  // unscoped call site
  // Every check is counted (scope filtering happens after counting, so the
  // check numbering replays identically whatever the policy's scope).
  EXPECT_EQ(check_count(Site::kKvShardQueueFull), 5u);
  EXPECT_EQ(fire_count(Site::kKvShardQueueFull), 1u);
}

TEST_F(FaultFramework, UnscopedPolicyMatchesEveryScope) {
  arm(Site::kCommitLogWrite);
  EXPECT_TRUE(should_fire(Site::kCommitLogWrite, 0));
  EXPECT_TRUE(should_fire(Site::kCommitLogWrite, 7));
  EXPECT_TRUE(should_fire(Site::kCommitLogWrite));
}

TEST_F(FaultFramework, ScopeAndCountingComposeWithAfterAndLimit) {
  // after/limit apply to the site's global check numbering, not to the
  // per-scope subsequence — scope only gates whether an eligible check
  // actually fires.
  Policy p;
  p.scope = 1;
  p.after = 2;
  p.limit = 2;
  arm(Site::kNetAccept, p);
  std::vector<int> fired;
  for (int n = 0; n < 8; ++n) {
    // Alternate scopes 0/1: checks 0,2,4,6 are scope 0; 1,3,5,7 scope 1.
    if (should_fire(Site::kNetAccept, static_cast<std::uint32_t>(n % 2))) {
      fired.push_back(n);
    }
  }
  // Eligible from check 2 on, scope-1 checks are 3,5,7; limit 2 => {3, 5}.
  EXPECT_EQ(fired, (std::vector<int>{3, 5}));
}

TEST_F(FaultFramework, ParseSpecScopeClause) {
  std::string err;
  ASSERT_TRUE(parse_spec("shard-queue-full:shard=1;net-accept:loop=0:oneshot",
                         &err))
      << err;
  EXPECT_FALSE(should_fire(Site::kKvShardQueueFull, 0));
  EXPECT_TRUE(should_fire(Site::kKvShardQueueFull, 1));
  EXPECT_TRUE(should_fire(Site::kNetAccept, 0));
  EXPECT_FALSE(should_fire(Site::kNetAccept, 0)) << "oneshot spent";
  EXPECT_FALSE(should_fire(Site::kNetAccept, 1));
  disarm_all();
  // scope= is the generic spelling; the wildcard value is reserved.
  ASSERT_TRUE(parse_spec("commitlog-write:scope=3", &err)) << err;
  EXPECT_FALSE(should_fire(Site::kCommitLogWrite, 2));
  EXPECT_TRUE(should_fire(Site::kCommitLogWrite, 3));
  EXPECT_FALSE(parse_spec("commitlog-write:scope=4294967295", &err));
}

TEST_F(FaultFramework, ScopedHelpersDisarmOnExit) {
  {
    ScopedFault f(Site::kKvQueueFull);
    EXPECT_TRUE(should_fire(Site::kKvQueueFull));
  }
  EXPECT_FALSE(should_fire(Site::kKvQueueFull));
  {
    ScopedSpec spec("kv-queue-full;net-accept:oneshot", /*spec_seed=*/3);
    EXPECT_TRUE(should_fire(Site::kKvQueueFull));
    EXPECT_TRUE(should_fire(Site::kNetAccept));
    EXPECT_FALSE(should_fire(Site::kNetAccept));
  }
  EXPECT_FALSE(should_fire(Site::kKvQueueFull));
}

}  // namespace
}  // namespace mgc::fault
