// Tests for the minimal JSON value/writer/parser behind the persisted
// BENCH_*.json reports: golden formatting, round-trips, determinism, and
// loud failures on malformed input.
#include "support/json.h"

#include <gtest/gtest.h>

#include <string>

namespace mgc {
namespace {

Json sample_report() {
  Json j = Json::object();
  j.set("schema", Json("mgc-bench-report"));
  j.set("schema_version", Json(1));
  j.set("bench", Json("unit"));
  Json metrics = Json::object();
  metrics.set("pause_ns", Json(std::int64_t{1234567891234}));
  metrics.set("ratio", Json(0.125));
  metrics.set("zero", Json(0.0));
  j.set("metrics", metrics);
  Json rows = Json::array();
  rows.push_back(Json("a"));
  rows.push_back(Json(true));
  rows.push_back(Json(nullptr));
  j.set("rows", rows);
  return j;
}

TEST(JsonTest, GoldenDump) {
  // The exact serialized form is part of the bench-report contract:
  // insertion order, two-space indent, no trailing ".0" on integers.
  const std::string expected =
      "{\n"
      "  \"schema\": \"mgc-bench-report\",\n"
      "  \"schema_version\": 1,\n"
      "  \"bench\": \"unit\",\n"
      "  \"metrics\": {\n"
      "    \"pause_ns\": 1234567891234,\n"
      "    \"ratio\": 0.125,\n"
      "    \"zero\": 0\n"
      "  },\n"
      "  \"rows\": [\n"
      "    \"a\",\n"
      "    true,\n"
      "    null\n"
      "  ]\n"
      "}\n";
  EXPECT_EQ(sample_report().dump(), expected);
}

TEST(JsonTest, DumpIsDeterministic) {
  EXPECT_EQ(sample_report().dump(), sample_report().dump());
}

TEST(JsonTest, RoundTripPreservesDump) {
  const std::string text = sample_report().dump();
  Json parsed;
  std::string err;
  ASSERT_TRUE(Json::parse(text, &parsed, &err)) << err;
  EXPECT_EQ(parsed.dump(), text);
}

TEST(JsonTest, ParsedValuesAreTyped) {
  Json parsed;
  std::string err;
  ASSERT_TRUE(Json::parse(sample_report().dump(), &parsed, &err)) << err;
  EXPECT_EQ(parsed.string_or("schema", ""), "mgc-bench-report");
  EXPECT_EQ(parsed.number_or("schema_version", -1), 1.0);
  const Json& metrics = parsed.at("metrics");
  ASSERT_TRUE(metrics.is_object());
  // An IEEE double holds this exactly; as_int64 must give it back.
  EXPECT_EQ(metrics.at("pause_ns").as_int64(), 1234567891234);
  EXPECT_EQ(metrics.at("ratio").as_double(), 0.125);
  const Json& rows = parsed.at("rows");
  ASSERT_TRUE(rows.is_array());
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_TRUE(rows.items()[1].as_bool());
  EXPECT_TRUE(rows.items()[2].is_null());
}

TEST(JsonTest, SetReplacesInPlace) {
  Json j = Json::object();
  j.set("a", Json(1));
  j.set("b", Json(2));
  j.set("c", Json(3));
  j.set("b", Json(20));
  ASSERT_EQ(j.members().size(), 3u);
  EXPECT_EQ(j.members()[1].first, "b");  // position kept
  EXPECT_EQ(j.members()[1].second.as_double(), 20.0);
}

TEST(JsonTest, MissingKeyAccessIsSafe) {
  const Json j = Json::object();
  EXPECT_FALSE(j.contains("nope"));
  EXPECT_EQ(j.find("nope"), nullptr);
  EXPECT_TRUE(j.at("nope").is_null());
  EXPECT_TRUE(j.at("nope").at("deeper").is_null());  // chains on shared null
  EXPECT_EQ(j.number_or("nope", 7.5), 7.5);
  EXPECT_EQ(j.string_or("nope", "dflt"), "dflt");
}

TEST(JsonTest, StringEscapesRoundTrip) {
  Json j = Json::object();
  j.set("s", Json(std::string("quote\" back\\ nl\n tab\t bell\x07")));
  Json parsed;
  std::string err;
  ASSERT_TRUE(Json::parse(j.dump(), &parsed, &err)) << err;
  EXPECT_EQ(parsed.at("s").as_string(), j.at("s").as_string());
}

TEST(JsonTest, ParseAcceptsUnicodeEscapes) {
  Json parsed;
  std::string err;
  ASSERT_TRUE(Json::parse("{\"s\": \"\\u00e9\\u0041\"}", &parsed, &err))
      << err;
  EXPECT_EQ(parsed.at("s").as_string(), "\xc3\xa9"
                                        "A");
}

TEST(JsonTest, MalformedInputFailsLoud) {
  const char* bad[] = {
      "",            // empty document
      "{",           // unterminated object
      "[1, ]",       // trailing comma
      "{\"a\" 1}",   // missing colon
      "{\"a\": 1} trailing",  // trailing garbage
      "\"\\q\"",     // bad escape
      "nul",         // truncated keyword
      "01",          // leading zero
      "1.2.3",       // bad number
  };
  for (const char* text : bad) {
    Json out;
    std::string err;
    EXPECT_FALSE(Json::parse(text, &out, &err)) << "accepted: " << text;
    EXPECT_FALSE(err.empty()) << "no error message for: " << text;
  }
}

TEST(JsonTest, NonFiniteNumbersSerializeAsNull) {
  Json j = Json::object();
  j.set("inf", Json(1.0 / 0.0));
  Json parsed;
  std::string err;
  ASSERT_TRUE(Json::parse(j.dump(), &parsed, &err)) << err;
  EXPECT_TRUE(parsed.at("inf").is_null());
}

}  // namespace
}  // namespace mgc
