// Chase-Lev deque: owner semantics, thief semantics, growth, and a
// multi-thread stress that checks every pushed item is consumed exactly
// once.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "support/ws_deque.h"

namespace mgc {
namespace {

TEST(WsDeque, OwnerLifoThiefFifo) {
  WsDeque<int*> dq(4);
  int items[3] = {1, 2, 3};
  dq.push(&items[0]);
  dq.push(&items[1]);
  dq.push(&items[2]);
  // Owner pops newest first.
  EXPECT_EQ(dq.pop().value(), &items[2]);
  // Thief steals oldest first.
  EXPECT_EQ(dq.steal().value(), &items[0]);
  EXPECT_EQ(dq.pop().value(), &items[1]);
  EXPECT_FALSE(dq.pop().has_value());
  EXPECT_FALSE(dq.steal().has_value());
}

TEST(WsDeque, GrowsPastInitialCapacity) {
  WsDeque<std::size_t*> dq(2);
  std::vector<std::size_t> items(1000);
  for (auto& v : items) dq.push(&v);
  EXPECT_GE(dq.size_estimate(), 1000u);
  for (std::size_t i = 0; i < items.size(); ++i) {
    EXPECT_TRUE(dq.pop().has_value());
  }
  EXPECT_TRUE(dq.empty());
}

TEST(WsDeque, ConcurrentStealersConsumeEachItemOnce) {
  constexpr int kItems = 20000;
  constexpr int kThieves = 3;
  WsDeque<std::size_t*> dq;
  std::vector<std::size_t> flags(kItems, 0);
  std::vector<std::atomic<int>> consumed(kItems);

  std::atomic<bool> done{false};
  std::vector<std::thread> thieves;
  std::atomic<int> total{0};
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      while (!done.load(std::memory_order_acquire) || !dq.empty()) {
        if (auto item = dq.steal()) {
          const auto idx = static_cast<std::size_t>(*item - flags.data());
          consumed[idx].fetch_add(1);
          total.fetch_add(1);
        }
      }
    });
  }

  // Owner: interleave pushes and pops.
  int popped = 0;
  for (int i = 0; i < kItems; ++i) {
    dq.push(&flags[static_cast<std::size_t>(i)]);
    if (i % 3 == 0) {
      if (auto item = dq.pop()) {
        const auto idx = static_cast<std::size_t>(*item - flags.data());
        consumed[idx].fetch_add(1);
        ++popped;
      }
    }
  }
  while (auto item = dq.pop()) {
    const auto idx = static_cast<std::size_t>(*item - flags.data());
    consumed[idx].fetch_add(1);
    ++popped;
  }
  done.store(true, std::memory_order_release);
  for (auto& t : thieves) t.join();

  EXPECT_EQ(popped + total.load(), kItems);
  for (int i = 0; i < kItems; ++i) {
    EXPECT_EQ(consumed[static_cast<std::size_t>(i)].load(), 1) << "item " << i;
  }
}

}  // namespace
}  // namespace mgc
