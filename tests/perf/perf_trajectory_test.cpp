// Perf-trajectory regression tests (ctest label: perf).
//
// Two halves:
//  * guard self-tests — compare_reports must catch an injected fake
//    regression, flag structural (_exact / zero-baseline) drift in both
//    directions, and fail loud on malformed or mismatched baselines;
//  * live trajectory — each guarded bench binary runs in --quick mode,
//    writes a fresh BENCH_*.json, and is compared against the committed
//    baseline in bench/baselines/.
//
// Thresholds are generous by default (quick-mode wall times are noisy) and
// overridable with MGC_PERF_THRESHOLD=<pct>. Re-baselining workflow:
// EXPERIMENTS.md, "Perf trajectory".
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench_json.h"

#ifndef MGC_BASELINE_DIR
#error "MGC_BASELINE_DIR must point at the committed bench/baselines dir"
#endif
#ifndef MGC_BENCH_DIR
#error "MGC_BENCH_DIR must point at the built bench binaries"
#endif
#ifndef MGC_GUARD_BIN
#error "MGC_GUARD_BIN must point at the bench_guard binary"
#endif

namespace mgc::bench {
namespace {

Json minimal_report(double pause_ms) {
  Json metrics = Json::object();
  metrics.set("pause_p99_ms", Json(pause_ms));
  metrics.set("trait_bits_exact", Json(166));
  metrics.set("epsilon_pauses_exact", Json(0.0));
  metrics.set("lucky_zero_counter", Json(0.0));
  Json j = Json::object();
  j.set("schema", Json(kBenchSchemaName));
  j.set("schema_version", Json(kBenchSchemaVersion));
  j.set("bench", Json("selftest"));
  j.set("metrics", metrics);
  j.set("collectors", Json::object());
  return j;
}

void set_metric(Json* report, const std::string& key, double value) {
  Json metrics = report->at("metrics");
  metrics.set(key, Json(value));
  report->set("metrics", std::move(metrics));
}

TEST(PerfGuardSelfTest, InjectedRegressionFails) {
  const Json baseline = minimal_report(10.0);
  Json fresh = minimal_report(10.9);  // within 25%
  EXPECT_TRUE(compare_reports(baseline, fresh, 25.0).empty());

  // The acceptance self-test: a fake 2x regression must trip the guard.
  set_metric(&fresh, "pause_p99_ms", 20.0);
  const std::vector<std::string> v = compare_reports(baseline, fresh, 25.0);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_NE(v.front().find("pause_p99_ms"), std::string::npos) << v.front();
  EXPECT_NE(v.front().find("exceeds baseline"), std::string::npos);
}

TEST(PerfGuardSelfTest, ImprovementsAndThresholdHeadroomPass) {
  const Json baseline = minimal_report(10.0);
  Json fresh = minimal_report(3.0);  // big improvement: fine
  EXPECT_TRUE(compare_reports(baseline, fresh, 25.0).empty());
  set_metric(&fresh, "pause_p99_ms", 12.4);  // just under the 25% limit
  EXPECT_TRUE(compare_reports(baseline, fresh, 25.0).empty());
}

TEST(PerfGuardSelfTest, ExactMetricDriftFailsBothDirections) {
  const Json baseline = minimal_report(10.0);
  for (const double drifted : {165.0, 167.0}) {
    Json fresh = minimal_report(10.0);
    set_metric(&fresh, "trait_bits_exact", drifted);
    const std::vector<std::string> v = compare_reports(baseline, fresh, 25.0);
    ASSERT_EQ(v.size(), 1u) << "drift to " << drifted;
    EXPECT_NE(v.front().find("trait_bits_exact"), std::string::npos);
  }
}

TEST(PerfGuardSelfTest, ZeroExactBaselineIsAStructuralInvariant) {
  const Json baseline = minimal_report(10.0);
  Json fresh = minimal_report(10.0);
  set_metric(&fresh, "epsilon_pauses_exact", 1.0);
  const std::vector<std::string> v = compare_reports(baseline, fresh, 25.0);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_NE(v.front().find("epsilon_pauses_exact"), std::string::npos);
}

TEST(PerfGuardSelfTest, PlainZeroBaselineIsSkipped) {
  // A zero counter without the "_exact" marker is timing luck (e.g. a
  // concurrent cycle that didn't fire in the baseline run), not a bound.
  const Json baseline = minimal_report(10.0);
  Json fresh = minimal_report(10.0);
  set_metric(&fresh, "lucky_zero_counter", 3.0);
  EXPECT_TRUE(compare_reports(baseline, fresh, 25.0).empty());
}

TEST(PerfGuardSelfTest, MissingMetricFails) {
  const Json baseline = minimal_report(10.0);
  Json fresh = minimal_report(10.0);
  Json metrics = Json::object();  // drop everything
  fresh.set("metrics", std::move(metrics));
  const std::vector<std::string> v = compare_reports(baseline, fresh, 25.0);
  EXPECT_EQ(v.size(), 4u);
  for (const std::string& s : v) {
    EXPECT_NE(s.find("missing in fresh"), std::string::npos) << s;
  }
}

TEST(PerfGuardSelfTest, MalformedBaselineFailsLoud) {
  const std::string path = ::testing::TempDir() + "mgc_malformed_baseline.json";
  {
    std::ofstream out(path, std::ios::trunc);
    out << "{ \"schema\": \"mgc-bench-report\", ";  // truncated document
  }
  Json loaded;
  std::string err;
  EXPECT_FALSE(load_report(path, &loaded, &err));
  EXPECT_FALSE(err.empty());

  // A parseable file with the wrong schema is just as fatal.
  Json wrong = Json::object();
  wrong.set("schema", Json("something-else"));
  const std::vector<std::string> v =
      compare_reports(wrong, minimal_report(1.0), 25.0);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_NE(v.front().find("malformed or wrong file"), std::string::npos);

  // So is a baseline for a different bench.
  Json other = minimal_report(1.0);
  other.set("bench", Json("other"));
  const std::vector<std::string> w =
      compare_reports(other, minimal_report(1.0), 25.0);
  ASSERT_EQ(w.size(), 1u);
  EXPECT_NE(w.front().find("bench name mismatch"), std::string::npos);
}

// --- bench_guard CLI ---------------------------------------------------------

int run_guard(const std::string& baseline, const std::string& fresh) {
  const std::string cmd = std::string(MGC_GUARD_BIN) + " --baseline " +
                          baseline + " --fresh " + fresh +
                          " --threshold-pct 25 >/dev/null 2>&1";
  const int rc = std::system(cmd.c_str());  // NOLINT(concurrency-mt-unsafe)
  return WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
}

TEST(PerfGuardCliTest, ExitCodesReflectComparison) {
  const std::string dir = ::testing::TempDir();
  const std::string base_path = dir + "mgc_guard_base.json";
  const std::string good_path = dir + "mgc_guard_good.json";
  const std::string bad_path = dir + "mgc_guard_bad.json";
  ASSERT_TRUE(write_report(minimal_report(10.0), base_path));
  ASSERT_TRUE(write_report(minimal_report(10.0), good_path));
  ASSERT_TRUE(write_report(minimal_report(100.0), bad_path));

  EXPECT_EQ(run_guard(base_path, good_path), 0);
  EXPECT_EQ(run_guard(base_path, bad_path), 1) << "regression must exit 1";
  EXPECT_EQ(run_guard(dir + "does_not_exist.json", good_path), 1);
}

// --- live trajectory: fresh --quick run vs committed baseline ----------------

double threshold_for(double dflt) {
  const char* env = std::getenv("MGC_PERF_THRESHOLD");
  if (env == nullptr || *env == '\0') return dflt;
  char* end = nullptr;
  const double v = std::strtod(env, &end);
  return (end != nullptr && *end == '\0' && v >= 0.0) ? v : dflt;
}

void run_trajectory(const std::string& binary, const std::string& bench_name,
                    double default_threshold_pct) {
  // MGC_GC narrows bench collector loops; a narrowed fresh run would
  // legitimately miss baseline metrics, so level the field.
  unsetenv("MGC_GC");  // NOLINT(concurrency-mt-unsafe)

  const std::string baseline_path =
      std::string(MGC_BASELINE_DIR) + "/BENCH_" + bench_name + ".json";
  const std::string fresh_path =
      ::testing::TempDir() + "BENCH_" + bench_name + ".fresh.json";
  const std::string cmd = std::string(MGC_BENCH_DIR) + "/" + binary +
                          " --quick --json " + fresh_path + " >/dev/null";
  ASSERT_EQ(std::system(cmd.c_str()), 0)  // NOLINT(concurrency-mt-unsafe)
      << "bench run failed: " << cmd;

  Json baseline;
  Json fresh;
  std::string err;
  ASSERT_TRUE(load_report(baseline_path, &baseline, &err))
      << err << " — generate it with `" << binary << " --quick --json "
      << baseline_path << "` and commit (see EXPERIMENTS.md)";
  ASSERT_TRUE(load_report(fresh_path, &fresh, &err)) << err;

  const double pct = threshold_for(default_threshold_pct);
  const std::vector<std::string> violations =
      compare_reports(baseline, fresh, pct);
  EXPECT_TRUE(violations.empty())
      << violations.size() << " violation(s) at threshold " << pct
      << "% (override with MGC_PERF_THRESHOLD), first: " << violations.front();
}

// Structural only (trait bits, list sizes): tight threshold.
TEST(PerfTrajectoryTest, Table1GcTraits) {
  run_trajectory("bench_table1_gc_traits", "table1", 25.0);
}

// Machine-independent ratios (word/serial, striped/serial card sweeps):
// losing the word-wise sweep is a many-fold jump, so 150% headroom still
// catches it while riding out scheduler noise.
TEST(PerfTrajectoryTest, CardscanRatios) {
  run_trajectory("bench_micro_cardscan", "cardscan", 150.0);
}

// Wall-clock pause statistics at --quick scale are the noisiest guarded
// metrics; the default headroom is wide and the real tripwires are the
// order-of-magnitude ones (lost card-scan optimization, runaway pauses).
TEST(PerfTrajectoryTest, Fig1PauseTimeline) {
  run_trajectory("bench_fig1_pause_timeline", "fig1", 500.0);
}

// Distilled costs vs the Epsilon baseline; Epsilon's zero-pause /
// zero-barrier entries are exact invariants regardless of the threshold.
TEST(PerfTrajectoryTest, DistilledCost) {
  run_trajectory("bench_distilled_cost", "distilled", 500.0);
}

// Loop/shard scaling fingerprints. Everything guarded here is a
// zero-baselined structural invariant (missing scaling points, per-loop
// drain violations, non-monotone ops/s steps on >=4-core hosts); raw
// throughput and latency live unguarded in the report's tables/config, so
// the threshold barely matters.
TEST(PerfTrajectoryTest, Scaling) {
  run_trajectory("bench_scaling", "scaling", 25.0);
}

// Replication safety fingerprints: zero verifier violations (includes
// zero lost acked writes), zero unacked writes, the forced failover
// actually electing, and Epsilon's zero-pause invariant — all "_exact",
// so the threshold only covers incidental counters.
TEST(PerfTrajectoryTest, ReplFailover) {
  run_trajectory("bench_repl_failover", "repl", 500.0);
}

}  // namespace
}  // namespace mgc::bench
