// DaCapo-suite harness behaviour: iteration timing, system-GC insertion,
// the paper's no-GC property for batik at the baseline configuration, and
// the crash modelling for eclipse/tradebeans/tradesoap.
#include <gtest/gtest.h>

#include "dacapo/harness.h"
#include "dacapo/suite.h"

namespace mgc::dacapo {
namespace {

VmConfig baseline(GcKind gc) { return VmConfig::baseline(gc); }

TEST(DacapoSuite, RegistryIsComplete) {
  EXPECT_EQ(all_benchmarks().size(), 14u);
  EXPECT_EQ(stable_subset().size(), 7u);
  EXPECT_EQ(crashing_benchmarks().size(), 3u);
  for (const auto& name : all_benchmarks()) {
    auto b = make_benchmark(name);
    EXPECT_EQ(b->info().name, name);
  }
}

TEST(DacapoHarness, SystemGcInsertsFullCollections) {
  HarnessOptions opts;
  opts.iterations = 3;
  opts.system_gc_between_iterations = true;
  opts.threads = 2;
  const HarnessResult res =
      run_benchmark(baseline(GcKind::kParallelOld), "pmd", opts);
  ASSERT_FALSE(res.crashed);
  EXPECT_EQ(res.iteration_s.size(), 3u);
  EXPECT_GE(res.pauses.full_pauses, 2u);  // system GC runs between iterations
  EXPECT_GT(res.total_s, 0.0);
  EXPECT_EQ(res.final_iteration_s, res.iteration_s.back());
}

TEST(DacapoHarness, BatikBaselineRunsWithoutAnyGc) {
  // §3.3 of the paper: batik performs no collection at the baseline heap
  // when the system GC is disabled.
  HarnessOptions opts;
  opts.iterations = 5;
  opts.system_gc_between_iterations = false;
  const HarnessResult res =
      run_benchmark(baseline(GcKind::kParallelOld), "batik", opts);
  ASSERT_FALSE(res.crashed);
  EXPECT_EQ(res.pauses.pauses, 0u)
      << "batik must not trigger GC at the baseline configuration";
}

TEST(DacapoHarness, XalanBaselineTriggersCollections) {
  HarnessOptions opts;
  opts.iterations = 3;
  opts.system_gc_between_iterations = false;
  opts.threads = 4;
  const HarnessResult res =
      run_benchmark(baseline(GcKind::kParallelOld), "xalan", opts);
  ASSERT_FALSE(res.crashed);
  EXPECT_GT(res.pauses.pauses, 0u);
}

TEST(DacapoHarness, CrashingBenchmarksReportCrash) {
  for (const auto& name : crashing_benchmarks()) {
    HarnessOptions opts;
    opts.iterations = 2;
    const HarnessResult res =
        run_benchmark(baseline(GcKind::kParallelOld), name, opts);
    EXPECT_TRUE(res.crashed) << name;
    EXPECT_TRUE(res.iteration_s.empty());
  }
}

}  // namespace
}  // namespace mgc::dacapo
