// Per-kernel behaviour tests: every benchmark runs under two collectors,
// the jitter machinery is deterministic per seed and shared across
// threads, and the benchmark-specific properties the experiments rely on
// hold (batik's near-zero GC footprint, xalan's retained cache, h2's
// persistent table).
#include <gtest/gtest.h>

#include "dacapo/harness.h"
#include "dacapo/kernels/common.h"
#include "dacapo/suite.h"
#include "support/units.h"

namespace mgc::dacapo {
namespace {

class EveryBenchmark : public ::testing::TestWithParam<std::string> {};

INSTANTIATE_TEST_SUITE_P(Suite, EveryBenchmark,
                         ::testing::ValuesIn(all_benchmarks()),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           return i.param;
                         });

TEST_P(EveryBenchmark, RunsUnderParallelOldAndG1) {
  for (GcKind gc : {GcKind::kParallelOld, GcKind::kG1}) {
    HarnessOptions opts;
    opts.iterations = 2;
    opts.threads = 2;
    const HarnessResult res =
        run_benchmark(VmConfig::baseline(gc), GetParam(), opts);
    const bool should_crash =
        std::find(crashing_benchmarks().begin(), crashing_benchmarks().end(),
                  GetParam()) != crashing_benchmarks().end();
    EXPECT_EQ(res.crashed, should_crash) << GetParam();
    if (!should_crash) {
      EXPECT_EQ(res.iteration_s.size(), 2u);
      EXPECT_GT(res.total_s, 0.0);
      EXPECT_GT(res.total_cpu_s, 0.0);
    }
  }
}

TEST(KernelCommon, IterationCountIsSeedDeterministic) {
  const auto a = iteration_count(42, 0.3, 1000);
  const auto b = iteration_count(42, 0.3, 1000);
  const auto c = iteration_count(43, 0.3, 1000);
  EXPECT_EQ(a, b);
  // Within the jitter envelope.
  EXPECT_GE(a, 700u);
  EXPECT_LE(a, 1300u);
  EXPECT_GE(c, 700u);
  EXPECT_LE(c, 1300u);
}

TEST(KernelCommon, JitterZeroIsExact) {
  Rng rng(1);
  EXPECT_EQ(jittered(rng, 0.0, 500), 500u);
  EXPECT_EQ(iteration_count(7, 0.0, 500), 500u);
}

TEST(KernelCommon, TreeBuilderProducesFullTree) {
  VmConfig cfg;
  cfg.heap_bytes = 16 * MiB;
  cfg.young_bytes = 4 * MiB;
  Vm vm(cfg);
  Vm::MutatorScope scope(vm, "t");
  Mutator& m = scope.mutator();
  Rng rng(5);
  Local root(m, build_tree(m, rng, /*depth=*/3, /*fanout=*/3, 2));
  // Count nodes by traversal.
  std::size_t count = 0;
  std::vector<Obj*> stack{root.get()};
  while (!stack.empty()) {
    Obj* o = stack.back();
    stack.pop_back();
    ++count;
    for (std::size_t i = 0; i < o->num_refs(); ++i) {
      if (o->ref(i) != nullptr) stack.push_back(o->ref(i));
    }
  }
  EXPECT_EQ(count, tree_nodes(3, 3));
  EXPECT_EQ(tree_nodes(3, 3), 40u);  // 1+3+9+27
  // Checksum is stable for an unchanged tree.
  EXPECT_EQ(tree_checksum(root.get()), tree_checksum(root.get()));
}

TEST(BatikProperty, AllocatesLessThanOneEdenPerIteration) {
  // The §3.3 experiment (no collections at the baseline heap) depends on
  // batik's allocation volume staying under the eden size per run.
  HarnessOptions opts;
  opts.iterations = 10;
  opts.system_gc_between_iterations = false;
  const HarnessResult res =
      run_benchmark(VmConfig::baseline(GcKind::kParallelOld), "batik", opts);
  EXPECT_EQ(res.pauses.pauses, 0u);
}

TEST(XalanProperty, RetainsItsDocumentCache) {
  // The full-GC cost experiments rely on xalan's retained live set.
  HarnessOptions opts;
  opts.iterations = 2;
  opts.threads = 2;
  VmConfig cfg = VmConfig::baseline(GcKind::kParallelOld);
  const HarnessResult res = run_benchmark(cfg, "xalan", opts);
  ASSERT_FALSE(res.crashed);
  // Full GCs (system GC) report several MB still used afterwards.
  bool saw_retained = false;
  for (const PauseEvent& e : res.pause_events) {
    if (e.full && e.used_after > 3 * MiB) saw_retained = true;
  }
  EXPECT_TRUE(saw_retained) << "xalan's retained cache is missing";
}

TEST(HarnessThreads, RespectsBenchmarkDefaults) {
  HarnessOptions opts;
  BenchmarkInfo single;
  single.default_threads = 1;
  EXPECT_EQ(harness_threads(single, opts), 1);
  BenchmarkInfo per_hw;
  per_hw.default_threads = 0;
  EXPECT_GE(harness_threads(per_hw, opts), 1);
  opts.threads = 3;
  EXPECT_EQ(harness_threads(single, opts), 3);  // explicit override wins
}

}  // namespace
}  // namespace mgc::dacapo
