// Collector-kind audit: the paper's six collectors keep their Table 1
// traits bit-for-bit, and the Epsilon baseline is excluded from the
// default benchmark lists while staying selectable by name everywhere.
#include "runtime/gc_kind.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace mgc {
namespace {

bool kind_in(const std::vector<GcKind>& v, GcKind k) {
  return std::find(v.begin(), v.end(), k) != v.end();
}

struct ExpectedTraits {
  GcKind kind;
  const char* name;
  const char* short_name;
  bool young_parallel, young_copying;
  bool old_parallel, old_compacting, old_concurrent_mark, old_concurrent_sweep;
};

// Table 1 of the paper plus the Epsilon row; the source of truth the
// implementation's kTraits table must keep matching.
constexpr ExpectedTraits kExpected[] = {
    {GcKind::kSerial, "SerialGC", "Serial", false, true, false, true, false,
     false},
    {GcKind::kParNew, "ParNewGC", "ParNew", true, true, false, true, false,
     false},
    {GcKind::kParallel, "ParallelGC", "Parallel", true, true, false, true,
     false, false},
    {GcKind::kParallelOld, "ParallelOldGC", "ParallelOld", true, true, true,
     true, false, false},
    {GcKind::kCms, "ConcMarkSweepGC", "CMS", true, true, true, false, true,
     true},
    {GcKind::kG1, "G1GC", "G1", true, true, true, true, true, false},
    {GcKind::kEpsilon, "EpsilonGC", "Epsilon", false, false, false, false,
     false, false},
};

TEST(GcKindTest, TraitsMatchTableOne) {
  ASSERT_EQ(std::size(kExpected), every_gc_kind().size());
  for (const ExpectedTraits& e : kExpected) {
    const GcTraits& t = gc_traits(e.kind);
    SCOPED_TRACE(t.name);
    EXPECT_STREQ(t.name, e.name);
    EXPECT_STREQ(t.short_name, e.short_name);
    EXPECT_EQ(t.young_parallel, e.young_parallel);
    EXPECT_EQ(t.young_copying, e.young_copying);
    // No collector in the study marks or copies the young gen concurrently.
    EXPECT_FALSE(t.young_concurrent_mark);
    EXPECT_FALSE(t.young_concurrent_copy);
    EXPECT_EQ(t.old_parallel, e.old_parallel);
    EXPECT_EQ(t.old_compacting, e.old_compacting);
    EXPECT_EQ(t.old_concurrent_mark, e.old_concurrent_mark);
    EXPECT_EQ(t.old_concurrent_sweep, e.old_concurrent_sweep);
  }
}

TEST(GcKindTest, EpsilonExcludedFromPaperLists) {
  EXPECT_EQ(all_gc_kinds().size(), 6u);   // the paper's Table 1 rows
  EXPECT_EQ(main_gc_kinds().size(), 3u);  // the client-server study's three
  EXPECT_EQ(every_gc_kind().size(), 7u);
  EXPECT_FALSE(kind_in(all_gc_kinds(), GcKind::kEpsilon));
  EXPECT_FALSE(kind_in(main_gc_kinds(), GcKind::kEpsilon));
  EXPECT_TRUE(kind_in(every_gc_kind(), GcKind::kEpsilon));
  // every_gc_kind() is exactly the paper list plus Epsilon, same order.
  for (std::size_t i = 0; i < all_gc_kinds().size(); ++i) {
    EXPECT_EQ(every_gc_kind()[i], all_gc_kinds()[i]);
  }
  // main_gc_kinds is a subset of all_gc_kinds.
  for (GcKind k : main_gc_kinds()) {
    EXPECT_TRUE(kind_in(all_gc_kinds(), k));
  }
}

TEST(GcKindTest, NamesRoundTripThroughParser) {
  for (GcKind k : every_gc_kind()) {
    GcKind parsed{};
    ASSERT_TRUE(try_gc_kind_from_name(gc_traits(k).name, &parsed));
    EXPECT_EQ(parsed, k);
    ASSERT_TRUE(try_gc_kind_from_name(gc_traits(k).short_name, &parsed));
    EXPECT_EQ(parsed, k);
  }
}

TEST(GcKindTest, ParserIsCaseInsensitiveAndRejectsJunk) {
  GcKind k{};
  ASSERT_TRUE(try_gc_kind_from_name("epsilon", &k));
  EXPECT_EQ(k, GcKind::kEpsilon);
  ASSERT_TRUE(try_gc_kind_from_name("EPSILONGC", &k));
  EXPECT_EQ(k, GcKind::kEpsilon);
  ASSERT_TRUE(try_gc_kind_from_name("concurrentmarksweep", &k));
  EXPECT_EQ(k, GcKind::kCms);

  k = GcKind::kSerial;
  EXPECT_FALSE(try_gc_kind_from_name("ZGC", &k));
  EXPECT_FALSE(try_gc_kind_from_name("", &k));
  EXPECT_FALSE(try_gc_kind_from_name("Epsilon ", &k));
  EXPECT_EQ(k, GcKind::kSerial);  // *out untouched on failure
}

}  // namespace
}  // namespace mgc
