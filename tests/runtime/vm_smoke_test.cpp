// Whole-VM smoke tests: allocate linked structures under GC pressure with
// every collector and verify the reachable data survives intact.
#include <gtest/gtest.h>

#include "runtime/managed.h"
#include "runtime/vm.h"
#include "support/units.h"

namespace mgc {
namespace {

VmConfig small_config(GcKind gc) {
  VmConfig cfg;
  cfg.gc = gc;
  cfg.heap_bytes = 8 * MiB;
  cfg.young_bytes = 2 * MiB;
  cfg.tlab_bytes = 4 * KiB;
  cfg.gc_threads = 4;
  return cfg;
}

class AllGcs : public ::testing::TestWithParam<GcKind> {};

INSTANTIATE_TEST_SUITE_P(Collectors, AllGcs,
                         ::testing::ValuesIn(all_gc_kinds()),
                         [](const ::testing::TestParamInfo<GcKind>& info) {
                           return gc_traits(info.param).short_name;
                         });

TEST_P(AllGcs, AllocationChurnPreservesLiveList) {
  Vm vm(small_config(GetParam()));
  Vm::MutatorScope scope(vm, "test");
  Mutator& m = scope.mutator();

  // Build a linked list of 2000 nodes, each with a payload pattern, while
  // also churning garbage to force collections.
  constexpr int kNodes = 2000;
  Local head(m);
  for (int i = 0; i < kNodes; ++i) {
    Local node(m, m.alloc(1, 2));
    node->set_field(0, static_cast<word_t>(i));
    node->set_field(1, static_cast<word_t>(i) * 0x9e3779b97f4a7c15ULL);
    m.set_ref(node.get(), 0, head.get());
    head.set(node.get());
    // Garbage churn: 20 short-lived objects per node.
    for (int g = 0; g < 20; ++g) {
      Local junk(m, m.alloc(2, 8));
      junk->set_field(0, static_cast<word_t>(g));
    }
  }

  // Verify the list end-to-end.
  int count = 0;
  Obj* cur = head.get();
  while (cur != nullptr) {
    const auto i = static_cast<word_t>(kNodes - 1 - count);
    EXPECT_EQ(cur->field(0), i);
    EXPECT_EQ(cur->field(1), i * 0x9e3779b97f4a7c15ULL);
    cur = cur->ref(0);
    ++count;
  }
  EXPECT_EQ(count, kNodes);
  EXPECT_GT(vm.gc_log().count(), 0u) << "expected at least one collection";
}

TEST_P(AllGcs, SystemGcCollectsGarbage) {
  Vm vm(small_config(GetParam()));
  Vm::MutatorScope scope(vm, "test");
  Mutator& m = scope.mutator();

  for (int i = 0; i < 5000; ++i) {
    Local junk(m, m.alloc(1, 16));
  }
  m.system_gc();
  const HeapUsage after = vm.usage();
  // Nearly everything was garbage; usage must collapse to near zero.
  EXPECT_LT(after.used, 256 * KiB);
  const auto events = vm.gc_log().snapshot();
  ASSERT_FALSE(events.empty());
  bool saw_full = false;
  for (const auto& e : events) saw_full |= e.full;
  EXPECT_TRUE(saw_full);
}

TEST_P(AllGcs, MultiThreadedSharedGraph) {
  Vm vm(small_config(GetParam()));
  const std::size_t map_root = vm.create_global_root();
  {
    Vm::MutatorScope scope(vm, "init");
    Mutator& m = scope.mutator();
    Local map(m, managed::hash_map::create(m, 512));
    vm.set_global_root(map_root, map.get());
  }
  std::mutex map_mu;

  vm.run_mutators(4, [&](Mutator& m, int idx) {
    for (int i = 0; i < 3000; ++i) {
      const auto key = static_cast<std::uint64_t>(idx) * 1000000 + i;
      Local value(m, m.alloc(0, 4));
      value->set_field(0, key * 3);
      {
        GuardedLock<std::mutex> g(m, map_mu);
        Local map(m, vm.global_root(map_root));
        managed::hash_map::put(m, map, key, value);
      }
      // churn
      Local junk(m, m.alloc(3, 6));
      (void)junk;
      if (i % 64 == 0) m.poll();
    }
  });

  Vm::MutatorScope scope(vm, "verify");
  Obj* map = vm.global_root(map_root);
  EXPECT_EQ(managed::hash_map::size(map), 4u * 3000u);
  for (int idx = 0; idx < 4; ++idx) {
    for (int i = 0; i < 3000; i += 97) {
      const auto key = static_cast<std::uint64_t>(idx) * 1000000 + i;
      Obj* v = managed::hash_map::get(map, key);
      ASSERT_NE(v, nullptr) << "key " << key;
      EXPECT_EQ(v->field(0), key * 3);
    }
  }
}

TEST_P(AllGcs, OutOfMemoryThrows) {
  VmConfig cfg = small_config(GetParam());
  cfg.heap_bytes = 2 * MiB;
  cfg.young_bytes = 512 * KiB;
  Vm vm(cfg);
  Vm::MutatorScope scope(vm, "test");
  Mutator& m = scope.mutator();
  Local head(m);
  EXPECT_THROW(
      {
        while (true) {
          Local node(m, m.alloc(1, 64));
          m.set_ref(node.get(), 0, head.get());
          head.set(node.get());
        }
      },
      OutOfMemoryError);
}

}  // namespace
}  // namespace mgc
