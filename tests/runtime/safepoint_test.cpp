// Safepoint protocol: stop-the-world reaches all managed threads, blocked
// threads are excluded, re-entry waits out active pauses, GuardedLock keeps
// lock waiters from stalling a safepoint.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "runtime/safepoint.h"
#include "runtime/vm.h"
#include "support/units.h"

namespace mgc {
namespace {

TEST(Safepoint, StopsAllManagedThreads) {
  SafepointCoordinator sp;
  constexpr int kThreads = 4;
  std::atomic<bool> stop{false};
  std::atomic<int> progress{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      sp.register_thread();
      while (!stop.load(std::memory_order_acquire)) {
        progress.fetch_add(1, std::memory_order_relaxed);
        sp.poll();
      }
      sp.unregister_thread();
    });
  }

  for (int round = 0; round < 20; ++round) {
    sp.begin();
    // World stopped: no progress while we hold the safepoint.
    const int p1 = progress.load(std::memory_order_acquire);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    const int p2 = progress.load(std::memory_order_acquire);
    EXPECT_EQ(p1, p2) << "mutator progressed inside a pause";
    sp.end();
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
}

TEST(Safepoint, BlockedThreadsDoNotDelayPause) {
  SafepointCoordinator sp;
  std::atomic<bool> release{false};
  std::thread blocked([&] {
    sp.register_thread();
    sp.enter_blocked();
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    sp.leave_blocked();
    sp.unregister_thread();
  });
  // The pause must complete while the thread sits in its blocked region.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  sp.begin();
  sp.end();
  release.store(true, std::memory_order_release);
  blocked.join();
}

TEST(Safepoint, LeaveBlockedWaitsOutActivePause) {
  SafepointCoordinator sp;
  std::atomic<int> state{0};
  std::thread t([&] {
    sp.register_thread();
    sp.enter_blocked();
    while (state.load() == 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
    sp.leave_blocked();  // must block until the pause ends
    state.store(2);
    sp.unregister_thread();
  });
  sp.begin();
  state.store(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(state.load(), 1) << "thread re-entered managed state mid-pause";
  sp.end();
  t.join();
  EXPECT_EQ(state.load(), 2);
}

TEST(Safepoint, GuardedLockHolderCanTriggerGc) {
  // Regression for the deadlock class: thread A holds an application mutex
  // and triggers a collection; thread B waits for the same mutex. With
  // GuardedLock, B is in blocked state and the pause proceeds.
  VmConfig cfg;
  cfg.gc = GcKind::kParallelOld;
  cfg.heap_bytes = 4 * MiB;
  cfg.young_bytes = 1 * MiB;
  cfg.gc_threads = 2;
  Vm vm(cfg);
  std::mutex app_mu;
  vm.run_mutators(3, [&](Mutator& m, int) {
    for (int i = 0; i < 300; ++i) {
      GuardedLock<std::mutex> g(m, app_mu);
      // Allocate enough inside the lock to trigger collections regularly.
      for (int j = 0; j < 50; ++j) {
        Local junk(m, m.alloc(1, 16));
        (void)junk;
      }
    }
  });
  EXPECT_GT(vm.gc_log().count(), 0u);
}

}  // namespace
}  // namespace mgc
