// Negative tests for the GC-safety net: each test breaks one discipline
// rule on purpose and asserts the corresponding detection layer catches it.
//
//   * a reference store that skips the write barrier must be reported by
//     verify_heap_at_safepoint's card check;
//   * evacuated from-space must carry the kFromSpaceZap pattern after a
//     young collection (so stale reads produce recognizable garbage);
//   * under AddressSanitizer the same stale read must abort with a
//     use-after-poison report.
//
// This suite lives in its own binary (mgc_poison_tests) because it flips
// the global poison::set_enabled switch, which must not leak into the
// timing-sensitive suites.
#include <gtest/gtest.h>

#include "heap/poison.h"
#include "runtime/heap_verifier.h"
#include "runtime/managed.h"
#include "runtime/vm.h"
#include "support/units.h"

namespace mgc {
namespace {

VmConfig tiny_config(GcKind gc) {
  VmConfig cfg;
  cfg.gc = gc;
  cfg.heap_bytes = 8 * MiB;
  cfg.young_bytes = 2 * MiB;
  cfg.tlab_bytes = 4 * KiB;
  cfg.gc_threads = 2;
  cfg.tenuring_threshold = 0;  // promote on the first copy
  return cfg;
}

// Stores an old->young reference with Obj::set_ref_raw — exactly the bug
// gclint's unbarriered-ref-store check exists for — and expects the
// safepoint verifier to flag the clean card.
TEST(PoisonNegative, SkippedWriteBarrierCaughtByVerifier) {
  Vm vm(tiny_config(GcKind::kSerial));
  Vm::MutatorScope scope(vm, "test");
  Mutator& m = scope.mutator();

  Local holder(m, m.alloc(2, 2));
  // tenuring_threshold = 0: the first young collection promotes holder.
  vm.collect(&m, false, GcCause::kSystemGc);
  // A second young collection leaves the old generation's cards clean
  // (holder carries no young refs yet).
  vm.collect(&m, false, GcCause::kSystemGc);

  ASSERT_TRUE(verify_heap_at_safepoint(m).ok())
      << "heap must verify clean before the barrier is skipped";

  Local young(m, m.alloc(0, 2));
  holder->set_ref_raw(0, young.get());  // deliberate: no card dirtied

  const VerifyReport rep = verify_heap_at_safepoint(m);
  EXPECT_FALSE(rep.ok())
      << "verifier missed an unbarriered old->young store";
  ASSERT_FALSE(rep.problems.empty());
  EXPECT_NE(rep.problems.front().find("card"), std::string::npos)
      << "unexpected problem kind: " << rep.problems.front();

  // Repair through the proper API so teardown-time collections see a
  // consistent heap again.
  m.set_ref(holder.get(), 0, young.get());
  EXPECT_TRUE(verify_heap_at_safepoint(m).ok());
}

// The poison layer must stamp evacuated from-space with kFromSpaceZap so
// stale pointers dereference into recognizable garbage, not stale copies.
TEST(PoisonNegative, FromSpaceZappedAfterYoungCollection) {
  poison::set_enabled(true);  // tier-1 builds default off under NDEBUG
  Vm vm(tiny_config(GcKind::kSerial));
  Vm::MutatorScope scope(vm, "test");
  Mutator& m = scope.mutator();

  Obj* junk = m.alloc(0, 8);  // unrooted: dies at the next collection
  junk->set_field(0, 0x5ca1ab1eULL);
  const char* raw = reinterpret_cast<const char*>(junk);
  const std::size_t bytes = junk->size_bytes();

  vm.collect(&m, false, GcCause::kSystemGc);

  EXPECT_TRUE(poison::check_zapped(raw, bytes, poison::kFromSpaceZap))
      << "evacuated eden memory was not zapped";
}

// Direct round-trip through the poison API: the zap pattern is visible via
// check_zapped (which unpoisons before reading) and pattern-specific.
TEST(PoisonNegative, ZapPatternRoundTrip) {
  poison::set_enabled(true);
  alignas(16) char buf[64];
  poison::zap_and_poison(buf, sizeof buf, poison::kFreeChunkZap);
  EXPECT_TRUE(poison::check_zapped(buf, sizeof buf, poison::kFreeChunkZap));
  EXPECT_FALSE(poison::check_zapped(buf, sizeof buf, poison::kLabTailZap));
  poison::unpoison(buf, sizeof buf);  // stack memory must not stay poisoned
}

#if MGC_ASAN
// Under ASan the zap sites also poison the shadow, so the stale read is a
// hard failure at the exact load, not just a wrong value later.
TEST(PoisonNegativeDeath, DanglingFromSpaceReadReportsUnderAsan) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Vm vm(tiny_config(GcKind::kSerial));
        Vm::MutatorScope scope(vm, "test");
        Mutator& m = scope.mutator();
        Obj* junk = m.alloc(0, 8);
        junk->set_field(0, 42);
        vm.collect(&m, false, GcCause::kSystemGc);
        // Dangling: junk was evacuated (or died) and from-space is poisoned.
        volatile word_t w = junk->field(0);
        (void)w;
      },
      "use-after-poison");
}
#endif  // MGC_ASAN

}  // namespace
}  // namespace mgc
