// Heap verifier, GC log bookkeeping, and VmConfig derivation tests.
#include <gtest/gtest.h>

#include "runtime/heap_verifier.h"
#include "runtime/managed.h"
#include "runtime/vm.h"
#include "support/units.h"

namespace mgc {
namespace {

class VerifierAllGcs : public ::testing::TestWithParam<GcKind> {};
INSTANTIATE_TEST_SUITE_P(Collectors, VerifierAllGcs,
                         ::testing::ValuesIn(all_gc_kinds()),
                         [](const ::testing::TestParamInfo<GcKind>& info) {
                           return gc_traits(info.param).short_name;
                         });

TEST_P(VerifierAllGcs, HeapIsSoundAfterHeavyChurnAndFullGc) {
  VmConfig cfg;
  cfg.gc = GetParam();
  cfg.heap_bytes = 10 * MiB;
  cfg.young_bytes = 2 * MiB;
  cfg.gc_threads = 2;
  Vm vm(cfg);
  Vm::MutatorScope scope(vm, "verify");
  Mutator& m = scope.mutator();

  Local map(m, managed::hash_map::create(m, 256));
  for (std::uint64_t k = 0; k < 4000; ++k) {
    Local v(m, m.alloc(2, 8));
    v->set_field(0, k);
    managed::hash_map::put(m, map, k % 1000, v);
    Local junk(m, m.alloc(1, 20));
    (void)junk;
  }
  m.system_gc();

  const VerifyReport rep = verify_heap(vm);
  for (const auto& p : rep.problems) ADD_FAILURE() << p;
  EXPECT_TRUE(rep.ok());
  EXPECT_GT(rep.reachable_objects, 1000u);
  EXPECT_GT(rep.reachable_bytes, 50 * KiB);
}

TEST(GcLogTest, SummariesAndTimelines) {
  GcLog log;
  log.set_origin(1000);
  PauseEvent a;
  a.start_ns = 2000;
  a.end_ns = 4000;
  a.kind = PauseKind::kYoungGc;
  log.add(a);
  PauseEvent b;
  b.start_ns = 10000;
  b.end_ns = 20000;
  b.kind = PauseKind::kFullGc;
  b.full = true;
  log.add(b);

  EXPECT_EQ(log.count(), 2u);
  const PauseSummary s = log.summarize();
  EXPECT_EQ(s.pauses, 2u);
  EXPECT_EQ(s.full_pauses, 1u);
  EXPECT_DOUBLE_EQ(s.total_s, (2000 + 10000) / 1e9);
  EXPECT_DOUBLE_EQ(s.max_s, 10000 / 1e9);
  EXPECT_TRUE(log.pause_overlaps(3000, 5000));
  EXPECT_FALSE(log.pause_overlaps(5000, 9000));
  EXPECT_DOUBLE_EQ(log.to_relative_s(2000), 1000 / 1e9);
  log.clear();
  EXPECT_EQ(log.count(), 0u);
}

TEST(VmConfigTest, GeometryDerivation) {
  VmConfig cfg;
  cfg.heap_bytes = 16 * MiB;
  cfg.young_bytes = 5 * MiB;
  cfg.survivor_ratio = 8;
  cfg.validate();
  EXPECT_EQ(cfg.old_bytes(), 11 * MiB);
  EXPECT_EQ(cfg.eden_bytes() + 2 * cfg.survivor_bytes(), cfg.young_bytes);
  EXPECT_NEAR(static_cast<double>(cfg.eden_bytes()) /
                  static_cast<double>(cfg.survivor_bytes()),
              8.0, 0.2);
  EXPECT_GE(cfg.effective_gc_threads(), 1);
}

TEST(VmConfigTest, BaselineMatchesPaper) {
  const VmConfig cfg = VmConfig::baseline(GcKind::kParallelOld);
  EXPECT_EQ(cfg.gc, GcKind::kParallelOld);
  EXPECT_EQ(scale::label(cfg.heap_bytes), "16GB");
  EXPECT_TRUE(cfg.tlab_enabled);
  cfg.validate();
}

TEST(ScaleLabels, PaperUnits) {
  EXPECT_EQ(scale::label(64ULL * 1024 * scale::MB), "64GB");
  EXPECT_EQ(scale::label(200 * scale::MB), "200MB");
  EXPECT_EQ(scale::label(256 * scale::MB, 100 * scale::MB), "256MB-100MB");
}

TEST(GcKindTest, NamesRoundTrip) {
  for (GcKind k : all_gc_kinds()) {
    EXPECT_EQ(gc_kind_from_name(gc_traits(k).name), k);
    EXPECT_EQ(gc_kind_from_name(gc_traits(k).short_name), k);
  }
  EXPECT_EQ(gc_kind_from_name("concurrentmarksweep"), GcKind::kCms);
  EXPECT_EQ(main_gc_kinds().size(), 3u);
}

}  // namespace
}  // namespace mgc
