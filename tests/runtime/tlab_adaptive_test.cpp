// Adaptive TLAB sizing (HotSpot ResizeTLAB analogue): under a steady
// allocation load the per-mutator TLAB converges so each mutator refills
// ~tlab_refill_target times per young cycle; when a mutator goes idle its
// EWMA decays and the TLAB shrinks back toward min_tlab_bytes. Runs in the
// stress tier so the TSan CI job covers the resize path.
#include <gtest/gtest.h>

#include "runtime/vm.h"
#include "support/units.h"

namespace mgc {
namespace {

VmConfig adaptive_config() {
  VmConfig cfg;
  cfg.gc = GcKind::kSerial;
  cfg.heap_bytes = 12 * MiB;
  cfg.young_bytes = 3 * MiB;
  cfg.tlab_bytes = 16 * KiB;
  cfg.tlab_adaptive = true;
  cfg.min_tlab_bytes = 1 * KiB;
  cfg.tlab_refill_target = 50;
  return cfg;
}

// Allocates garbage until `cycles` young collections have completed.
void churn_cycles(Vm& vm, Mutator& m, std::uint64_t cycles) {
  const std::uint64_t until = vm.gc_epoch() + cycles;
  while (vm.gc_epoch() < until) {
    for (int i = 0; i < 64; ++i) {
      Local junk(m, m.alloc(1, 5));
      (void)junk;
    }
  }
}

TEST(TlabAdaptive, SteadyLoadConvergesToRefillTarget) {
  Vm vm(adaptive_config());
  Vm::MutatorScope scope(vm, "steady");
  Mutator& m = scope.mutator();

  // Warm up: let the EWMA see a number of complete young cycles.
  churn_cycles(vm, m, 12);

  // A single steady mutator owns the whole eden, so the converged TLAB is
  // ~eden / refill_target — well above the 16 KiB initial size here.
  const std::size_t converged = m.desired_tlab_bytes();
  EXPECT_GT(converged, vm.config().tlab_bytes);
  EXPECT_LT(converged, vm.config().eden_bytes());

  // Measure refills per cycle over a closed window. The target is 50;
  // accept a generous band (clamping, partial windows, and direct old-gen
  // allocations all blur it).
  const std::uint64_t refills_before = m.tlab_refills();
  const std::uint64_t epoch_before = vm.gc_epoch();
  churn_cycles(vm, m, 8);
  const double refills_per_cycle =
      static_cast<double>(m.tlab_refills() - refills_before) /
      static_cast<double>(vm.gc_epoch() - epoch_before);
  EXPECT_GE(refills_per_cycle, 20.0);
  EXPECT_LE(refills_per_cycle, 120.0);
}

TEST(TlabAdaptive, IdleMutatorShrinksItsTlab) {
  Vm vm(adaptive_config());
  Vm::MutatorScope scope(vm, "idle");
  Mutator& m = scope.mutator();

  churn_cycles(vm, m, 12);
  const std::size_t steady = m.desired_tlab_bytes();
  ASSERT_GT(steady, vm.config().min_tlab_bytes);

  // Go (nearly) idle: collections keep happening but this mutator barely
  // allocates. Each tiny burst forces at least one refill, which folds the
  // near-zero closed windows into the EWMA.
  for (int round = 0; round < 8; ++round) {
    m.system_gc();
    m.system_gc();
    // A burst bigger than the (shrinking) TLAB so a refill — and with it a
    // resize — actually happens.
    for (int i = 0; i < 600; ++i) {
      Local junk(m, m.alloc(0, 5));
      (void)junk;
    }
  }

  EXPECT_LE(m.desired_tlab_bytes() * 2, steady)
      << "idle mutator kept a large TLAB (steady " << steady << " bytes)";
}

TEST(TlabAdaptive, FixedModeNeverResizes) {
  VmConfig cfg = adaptive_config();
  cfg.tlab_adaptive = false;
  Vm vm(cfg);
  Vm::MutatorScope scope(vm, "fixed");
  Mutator& m = scope.mutator();

  churn_cycles(vm, m, 6);
  EXPECT_EQ(m.desired_tlab_bytes(), cfg.tlab_bytes);
}

}  // namespace
}  // namespace mgc
