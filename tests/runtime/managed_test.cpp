// Managed data structures: ref arrays (chunking), hash map semantics,
// lists, blobs — all under a moving collector.
#include <gtest/gtest.h>

#include <cstring>
#include <map>

#include "runtime/managed.h"
#include "runtime/vm.h"
#include "support/units.h"

namespace mgc::managed {
namespace {

struct VmFixture : ::testing::Test {
  VmFixture() {
    VmConfig cfg;
    cfg.gc = GcKind::kParallelOld;
    cfg.heap_bytes = 16 * MiB;
    cfg.young_bytes = 4 * MiB;
    cfg.gc_threads = 2;
    vm = std::make_unique<Vm>(cfg);
    scope = std::make_unique<Vm::MutatorScope>(*vm, "test");
  }
  Mutator& m() { return scope->mutator(); }
  std::unique_ptr<Vm> vm;
  std::unique_ptr<Vm::MutatorScope> scope;
};

using RefArrayTest = VmFixture;
using HashMapTest = VmFixture;
using ListTest = VmFixture;
using BlobTest = VmFixture;

TEST_F(RefArrayTest, ChunkedArraySpansManyChunks) {
  const std::size_t n = ref_array::kChunkRefs * 3 + 17;
  Local arr(m(), ref_array::create(m(), n));
  EXPECT_EQ(ref_array::capacity(arr.get()), n);
  // Set a few widely spread slots across chunk boundaries.
  for (std::size_t i : {std::size_t{0}, ref_array::kChunkRefs - 1,
                        ref_array::kChunkRefs, 2 * ref_array::kChunkRefs + 5,
                        n - 1}) {
    Local v(m(), m().alloc(0, 1));
    v->set_field(0, i);
    ref_array::set(m(), arr.get(), i, v.get());
  }
  for (std::size_t i : {std::size_t{0}, ref_array::kChunkRefs - 1,
                        ref_array::kChunkRefs, 2 * ref_array::kChunkRefs + 5,
                        n - 1}) {
    Obj* v = ref_array::get(arr.get(), i);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(v->field(0), i);
  }
  EXPECT_EQ(ref_array::get(arr.get(), 1), nullptr);
}

TEST_F(HashMapTest, PutGetRemoveSemantics) {
  Local map(m(), hash_map::create(m(), 64));
  EXPECT_EQ(hash_map::size(map.get()), 0u);
  EXPECT_EQ(hash_map::get(map.get(), 1), nullptr);

  Local v1(m(), m().alloc(0, 1));
  v1->set_field(0, 111);
  hash_map::put(m(), map, 1, v1);
  EXPECT_EQ(hash_map::size(map.get()), 1u);
  EXPECT_EQ(hash_map::get(map.get(), 1)->field(0), 111u);

  // Replace does not grow the size.
  Local v2(m(), m().alloc(0, 1));
  v2->set_field(0, 222);
  hash_map::put(m(), map, 1, v2);
  EXPECT_EQ(hash_map::size(map.get()), 1u);
  EXPECT_EQ(hash_map::get(map.get(), 1)->field(0), 222u);

  EXPECT_FALSE(hash_map::remove(m(), map.get(), 99));
  EXPECT_TRUE(hash_map::remove(m(), map.get(), 1));
  EXPECT_EQ(hash_map::size(map.get()), 0u);
  EXPECT_EQ(hash_map::get(map.get(), 1), nullptr);
}

TEST_F(HashMapTest, CollidingKeysChainCorrectly) {
  // A 1-bucket map forces every key onto one chain.
  Local map(m(), hash_map::create(m(), 1));
  for (std::uint64_t k = 0; k < 50; ++k) {
    Local v(m(), m().alloc(0, 1));
    v->set_field(0, k * 10);
    hash_map::put(m(), map, k, v);
  }
  EXPECT_EQ(hash_map::size(map.get()), 50u);
  for (std::uint64_t k = 0; k < 50; ++k) {
    ASSERT_NE(hash_map::get(map.get(), k), nullptr) << k;
    EXPECT_EQ(hash_map::get(map.get(), k)->field(0), k * 10);
  }
  // Remove from the middle of the chain.
  EXPECT_TRUE(hash_map::remove(m(), map.get(), 25));
  EXPECT_EQ(hash_map::get(map.get(), 25), nullptr);
  EXPECT_NE(hash_map::get(map.get(), 24), nullptr);
  EXPECT_NE(hash_map::get(map.get(), 26), nullptr);
}

TEST_F(HashMapTest, ForEachVisitsEveryEntryOnce) {
  Local map(m(), hash_map::create(m(), 16));
  for (std::uint64_t k = 100; k < 150; ++k) {
    Local v(m(), m().alloc(0, 1));
    v->set_field(0, k);
    hash_map::put(m(), map, k, v);
  }
  std::map<std::uint64_t, int> seen;
  hash_map::for_each(map.get(), [&](std::uint64_t k, Obj* v) {
    EXPECT_EQ(v->field(0), k);
    ++seen[k];
  });
  EXPECT_EQ(seen.size(), 50u);
  for (const auto& [k, n] : seen) EXPECT_EQ(n, 1) << k;
}

TEST_F(ListTest, PushPopClearOrder) {
  Local lst(m(), list::create(m()));
  EXPECT_EQ(list::size(lst.get()), 0u);
  EXPECT_EQ(list::pop(m(), lst.get()), nullptr);
  for (int i = 0; i < 5; ++i) {
    Local v(m(), m().alloc(0, 1));
    v->set_field(0, static_cast<word_t>(i));
    list::push(m(), lst, v);
  }
  EXPECT_EQ(list::size(lst.get()), 5u);
  // LIFO.
  EXPECT_EQ(list::pop(m(), lst.get())->field(0), 4u);
  EXPECT_EQ(list::pop(m(), lst.get())->field(0), 3u);
  EXPECT_EQ(list::size(lst.get()), 3u);
  list::clear(m(), lst.get());
  EXPECT_EQ(list::size(lst.get()), 0u);
}

TEST_F(BlobTest, RoundTripAndZeroing) {
  const char data[] = "some bytes \x01\x02\x03";
  Local b(m(), blob::create(m(), data, sizeof(data)));
  EXPECT_EQ(blob::length(b.get()), sizeof(data));
  EXPECT_EQ(std::memcmp(blob::data(b.get()), data, sizeof(data)), 0);

  Local z(m(), blob::create_zeroed(m(), 100));
  EXPECT_EQ(blob::length(z.get()), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(blob::data(z.get())[i], 0);
}

TEST_F(HashMapTest, SurvivesForcedCollections) {
  Local map(m(), hash_map::create(m(), 128));
  for (std::uint64_t k = 0; k < 500; ++k) {
    Local v(m(), m().alloc(0, 2));
    v->set_field(0, k ^ 0x5a5a);
    hash_map::put(m(), map, k, v);
    if (k % 100 == 0) m().system_gc();
  }
  m().system_gc();
  for (std::uint64_t k = 0; k < 500; ++k) {
    ASSERT_NE(hash_map::get(map.get(), k), nullptr) << k;
    EXPECT_EQ(hash_map::get(map.get(), k)->field(0), k ^ 0x5a5a);
  }
}

}  // namespace
}  // namespace mgc::managed
