// Replication under GC: the client-visible cost of a leader's collector.
//
// For each collector (Serial, CMS, G1, and the Epsilon lower bound) this
// bench runs a 3-node replicated cluster (quorum 2, wall-clock ticker)
// and measures, from a real rotating client:
//
//   (a) steady load with a forced full collection on the leader mid-run —
//       write p99/p99.9, follower-read latency while the leader's pump is
//       parked at the safepoint, and whether the pause alone exceeded the
//       failure detector's budget (a spurious election);
//   (b) a forced failover — the leader's heartbeats deterministically
//       suppressed (repl-heartbeat-loss) during a forced pause, so the
//       detector MUST fire — and the write tail while the client chases
//       the new leader through kNotLeader redirects and age-outs.
//
// Headline table: per collector, the forced pause vs the detector budget,
// elections observed, and the client percentiles. Safety is guarded
// exactly: zero verifier violations (which includes zero lost acked
// writes) per collector, and Epsilon must log zero pauses — it never
// collects, so any pause under Epsilon is a harness bug.
//
// --json <path> persists the BENCH_repl report; --quick smoke-scales.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "bench_json.h"
#include "replication/cluster.h"
#include "replication/repl_client.h"
#include "support/fault.h"

namespace {

double now_us() {
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(
                 std::chrono::steady_clock::now().time_since_epoch())
                 .count()) /
         1000.0;
}

double pct(const std::vector<double>& xs, double p) {
  return xs.empty() ? 0.0 : mgc::percentile_of(xs, p);
}

mgc::net::RetryPolicy client_policy() {
  mgc::net::RetryPolicy p;
  p.timeout_ms = 2000;
  p.backoff_initial_ms = 1;
  p.backoff_cap_ms = 50;
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mgc;
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  bench::banner(
      "Replicated kvstore: leader GC pause vs follower reads, and "
      "GC-pause-driven failover (3 nodes, quorum 2)",
      "the failover methodology (not a paper figure)");

  const std::uint64_t keys_a = args.quick ? 150 : 1500;  // steady phase
  const std::uint64_t keys_b = keys_a / 2;               // failover phase
  const int tick_us = 1000;
  const int election_ticks = 8;
  // Node 1 carries the smallest stagger: the cluster-wide detector budget
  // is the silence that makes the first rival fire.
  const double budget_ms = tick_us * (election_ticks + 1) / 1000.0;

  bench::BenchReport report("repl", args);
  report.set_config("tick_us", Json(static_cast<double>(tick_us)));
  report.set_config("detector_budget_ms", Json(budget_ms));
  report.set_config("keys_steady", Json(static_cast<double>(keys_a)));
  report.set_config("keys_failover", Json(static_cast<double>(keys_b)));

  Table headline("GC pause vs failure detector (budget " +
                 Table::num(budget_ms, 1) + " ms)");
  headline.header({"collector", "pause ms", ">budget", "elections",
                   "steady p99 us", "steady p99.9 us", "read p99 us",
                   "reads shed", "failover p99 us", "acked", "violations"});

  const std::vector<GcKind> kinds = {GcKind::kSerial, GcKind::kCms,
                                     GcKind::kG1, GcKind::kEpsilon};
  bool failed = false;
  for (GcKind gc : kinds) {
    repl::ClusterConfig cc;
    cc.nodes = 3;
    repl::NodeConfig& nc = cc.node;
    nc.shards = 2;
    nc.quorum = 2;
    nc.heartbeat_every_ticks = 1;
    nc.election_timeout_ticks = election_ticks;
    nc.vm.gc = gc;
    nc.vm.heap_bytes = 48 * MiB;
    nc.vm.young_bytes = 12 * MiB;
    nc.vm.gc_threads = 2;
    nc.store = kv::StoreConfig::default_config(nc.vm.heap_bytes);
    nc.store.value_len = 256;

    repl::Cluster cluster(cc);
    cluster.start_ticker(tick_us);
    int leader = -1;
    if (!cluster.wait_leader(&leader)) {
      std::fprintf(stderr, "FAIL: %s: no leader after bootstrap\n",
                   gc_name(gc));
      failed = true;
      continue;
    }

    std::uint64_t elections0 = 0;
    for (std::size_t i = 0; i < cluster.size(); ++i) {
      elections0 += cluster.node(i).stats().elections_started;
    }

    // Follower-read sidecar: a second driver reading already-acked keys
    // from the two non-bootstrap replicas for the whole run. While the
    // leader's pump sits in the forced pause, these reads are the service
    // the replication tier keeps alive.
    const std::vector<std::uint16_t> all_ports = cluster.client_ports();
    std::vector<std::uint16_t> follower_ports;
    for (std::size_t i = 0; i < all_ports.size(); ++i) {
      if (static_cast<int>(i) != leader) follower_ports.push_back(all_ports[i]);
    }
    std::atomic<std::uint64_t> watermark{0};
    std::atomic<bool> reader_stop{false};
    std::vector<double> read_us;
    std::uint64_t reads_shed = 0;
    std::thread reader([&] {
      repl::ReplClient rc(follower_ports, {client_policy(), /*max_rounds=*/8});
      std::uint64_t i = 0;
      while (!reader_stop.load(std::memory_order_acquire)) {
        const std::uint64_t w = watermark.load(std::memory_order_acquire);
        if (w == 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
          continue;
        }
        kv::Request req;
        req.op = kv::OpType::kRead;
        req.key = i++ % w;
        const double t0 = now_us();
        const kv::Response r = rc.execute(req);
        if (r.status == kv::ExecStatus::kOk) {
          read_us.push_back(now_us() - t0);
        } else if (r.status == kv::ExecStatus::kOverloaded) {
          ++reads_shed;  // stale-follower shed: the staleness gate working
        }
      }
    });

    repl::ReplClient client(all_ports, {client_policy(), /*max_rounds=*/32});
    std::vector<double> steady_us;
    steady_us.reserve(keys_a);
    for (std::uint64_t k = 0; k < keys_a; ++k) {
      if (k == keys_a / 2) {
        // The forced pause, mid-load: parks the leader's pump (and this
        // measurement pins the leader of record at that instant).
        const int li = cluster.leader_index();
        repl::Node& ln = cluster.node(
            static_cast<std::size_t>(li >= 0 ? li : leader));
        Vm::MutatorScope scope(ln.vm(), "bench-forced-pause");
        scope.mutator().system_gc();
      }
      kv::Request req;
      req.op = kv::OpType::kInsert;
      req.key = k;
      req.value_len = nc.store.value_len;
      const double t0 = now_us();
      if (client.execute(req).status == kv::ExecStatus::kOk) {
        steady_us.push_back(now_us() - t0);
        watermark.store(k + 1, std::memory_order_release);
      }
    }

    std::uint64_t elections_steady = 0;
    for (std::size_t i = 0; i < cluster.size(); ++i) {
      elections_steady += cluster.node(i).stats().elections_started;
    }
    elections_steady -= elections0;

    // The leader's worst stop-the-world so far (forced full collection
    // included). Epsilon logs none, ever.
    const int li_a = cluster.leader_index();
    repl::Node& pause_node =
        cluster.node(static_cast<std::size_t>(li_a >= 0 ? li_a : leader));
    const PauseSummary ps = pause_node.vm().gc_log().summarize();
    const double pause_ms = ps.max_s * 1000.0;

    // Forced failover: suppress the leader's heartbeats during another
    // forced pause; the detector must fire and a rival must take over.
    const int old_leader = cluster.leader_index();
    bool failover_ok = false;
    if (old_leader >= 0) {
      char spec[64];
      std::snprintf(spec, sizeof(spec), "repl-heartbeat-loss:scope=%d",
                    old_leader);
      fault::ScopedSpec guard(spec, /*seed=*/7);
      {
        Vm::MutatorScope scope(
            cluster.node(static_cast<std::size_t>(old_leader)).vm(),
            "bench-failover-pause");
        scope.mutator().system_gc();
      }
      for (int waited = 0; waited < 5000; ++waited) {
        const int nl = cluster.leader_index();
        if (nl >= 0 && nl != old_leader) {
          failover_ok = true;
          break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }

    std::vector<double> failover_us;
    failover_us.reserve(keys_b);
    for (std::uint64_t k = keys_a; k < keys_a + keys_b; ++k) {
      kv::Request req;
      req.op = kv::OpType::kInsert;
      req.key = k;
      req.value_len = nc.store.value_len;
      const double t0 = now_us();
      if (client.execute(req).status == kv::ExecStatus::kOk) {
        failover_us.push_back(now_us() - t0);
      }
    }

    reader_stop.store(true, std::memory_order_release);
    reader.join();

    cluster.wait_converged(10000);
    const std::vector<std::string> violations =
        cluster.verify(&client.acked_keys());
    for (const std::string& v : violations) {
      std::fprintf(stderr, "VERIFY %s: %s\n", gc_name(gc), v.c_str());
    }
    const std::uint64_t unacked =
        keys_a + keys_b - client.acked_keys().size();
    if (!failover_ok) {
      std::fprintf(stderr, "FAIL: %s: forced failover never elected\n",
                   gc_name(gc));
    }
    if (!violations.empty() || !failover_ok) failed = true;

    headline.row({gc_name(gc), Table::num(pause_ms, 3),
                  pause_ms > budget_ms ? "YES" : "no",
                  std::to_string(elections_steady),
                  Table::num(pct(steady_us, 99.0), 1),
                  Table::num(pct(steady_us, 99.9), 1),
                  Table::num(pct(read_us, 99.0), 1),
                  std::to_string(reads_shed),
                  Table::num(pct(failover_us, 99.0), 1),
                  std::to_string(client.acked_keys().size()),
                  std::to_string(violations.size())});

    // Guarded structure, not guarded timing: safety must hold exactly on
    // every host; the latency columns live in the (unguarded) table.
    report.set_collector_metric(gc, "safety_violations_exact",
                                static_cast<double>(violations.size()));
    report.set_collector_metric(gc, "unacked_writes_exact",
                                static_cast<double>(unacked));
    report.set_collector_metric(gc, "failover_failed_exact",
                                failover_ok ? 0.0 : 1.0);
    if (gc == GcKind::kEpsilon) {
      report.set_collector_metric(gc, "pauses_exact",
                                  static_cast<double>(ps.pauses));
    }

    cluster.shutdown();
  }

  headline.print(std::cout);
  report.add_table(headline);

  std::cout << "\nExpected shape: Epsilon never pauses, so only detector\n"
               "noise could elect under it; the real collectors' forced\n"
               "pause shows up in the steady write tail and — when it\n"
               "exceeds the detector budget — as a spurious election. The\n"
               "forced failover column prices an election into the client\n"
               "p99: redirects, retry backoff, and the pending-write\n"
               "age-out on the deposed leader.\n";

  if (!report.write()) return 1;
  return failed ? 1 : 0;
}
