// Shared report builders: the fig1 pause-timeline report and the
// distilled-cost report are produced both by their bench_* binaries and
// by the perf regression guard test (tests/perf/), so the logic lives in
// one place. Each builder prints its tables/series to stdout (the bench
// binaries' normal output) and returns the schema-versioned JSON report.
#pragma once

#include "bench_json.h"

namespace mgc::bench {

// Figure 1 (xalan pause timelines, system GC on/off) with the PR 2
// critical-path counters the guard watches: per-collector pause count,
// max/avg/p99 pause, and the young-pause root-scan / card-scan phase
// averages.
Json make_fig1_report(const BenchArgs& args);

// The distilled-cost study: every collector's total GC cost — STW pauses
// + allocation slow path + write-barrier work + concurrent cycles — over
// dacapo kernels and a YCSB kv run, against an Epsilon baseline whose
// heap is sized to each workload's full allocation volume.
Json make_distilled_report(const BenchArgs& args);

// Measures the card-table write barrier's per-operation cost: the same
// reference-store loop timed under Serial (card barrier) and Epsilon (no
// barrier); the delta prices the barrier-op counters in nanoseconds.
double calibrate_barrier_ns_per_op();

}  // namespace mgc::bench
