// Shared setup for the client-server experiments (§4): a Cassandra-like
// store on a 64 GB (scaled) heap with a 12 GB young generation, a server
// worker pool, and a YCSB client. The stress configuration keeps memtable
// and commit log in memory so the old generation saturates.
#pragma once

#include <cstdlib>
#include <cstring>
#include <memory>

#include "bench_common.h"
#include "kvstore/server.h"
#include "net/net_server.h"
#include "ycsb/latency_stats.h"

namespace mgc::bench {

struct CassandraRun {
  PauseSummary pauses;
  std::vector<PauseEvent> pause_events;
  std::int64_t origin_ns = 0;
  ycsb::PhaseResult load;
  ycsb::PhaseResult run;
  std::uint64_t flushes = 0;
  // Distilled GC cost channels for the whole run (runtime/gc_cost.h).
  GcCostSnapshot cost;
  std::uint64_t allocated_bytes = 0;
};

inline VmConfig cassandra_vm_config(GcKind gc) {
  // §4: heap 64 GB, young generation 12 GB (scaled). Cassandra ships its
  // own GC tuning in cassandra-env.sh; the analogue here is an explicit
  // CMS initiating occupancy so the background cycle starts with headroom
  // (the real file sets CMSInitiatingOccupancyFraction + UseCMSInitiating-
  // OccupancyOnly for exactly this reason).
  VmConfig cfg = VmConfig::baseline(gc);
  cfg.heap_bytes = 64ULL * 1024 * scale::MB;
  cfg.young_bytes = 12ULL * 1024 * scale::MB;
  cfg.cms_trigger_occupancy = 0.55;
  return cfg;
}

// With use_net=true the YCSB client talks to the server over loopback TCP
// through the epoll front-end (the paper's separate-client-machine path);
// otherwise it calls straight into the worker queue as before.
inline CassandraRun run_cassandra_ycsb(GcKind gc, bool stress,
                                       std::uint64_t records,
                                       std::uint64_t operations,
                                       double read_prop = 0.5,
                                       double update_prop = 0.5,
                                       double insert_prop = 0.0,
                                       bool use_net = false,
                                       std::size_t heap_bytes_override = 0,
                                       int net_loops = 1) {
  VmConfig cfg = cassandra_vm_config(gc);
  if (heap_bytes_override != 0) {
    // The distilled-cost bench hands Epsilon a heap sized to the
    // workload's full allocation volume (nothing is ever reclaimed).
    cfg.heap_bytes = heap_bytes_override;
  }
  Vm vm(cfg);
  kv::StoreConfig scfg = stress
                             ? kv::StoreConfig::stress_config(cfg.heap_bytes)
                             : kv::StoreConfig::default_config(cfg.heap_bytes);
  kv::Store store(vm, scfg);
  const int workers = std::min(env::threads(), 8);
  kv::Server server(vm, store, workers);

  ycsb::WorkloadSpec spec;
  spec.record_count = records;
  spec.operation_count = operations;
  spec.read_proportion = read_prop;
  spec.update_proportion = update_prop;
  spec.insert_proportion = insert_prop;
  spec.value_len = scfg.value_len;
  spec.client_threads = workers;

  std::unique_ptr<net::NetServer> net_server;
  std::unique_ptr<ycsb::Client> client;
  if (use_net) {
    net::NetServerConfig ncfg;
    ncfg.loops = net_loops;
    net_server = std::make_unique<net::NetServer>(server, ncfg);
    ycsb::RemoteEndpoint ep;
    ep.port = net_server->port();
    client = std::make_unique<ycsb::Client>(ep, spec, env::seed());
  } else {
    client = std::make_unique<ycsb::Client>(server, spec, env::seed());
  }
  CassandraRun out;
  out.origin_ns = vm.gc_log().origin_ns();
  out.load = client->load();
  out.run = client->run();
  if (net_server != nullptr) net_server->shutdown();  // drain + flush
  out.pauses = vm.gc_log().summarize();
  out.pause_events = vm.gc_log().snapshot();
  out.flushes = store.flush_count();
  out.cost = vm.cost_snapshot();
  out.allocated_bytes = vm.total_allocated_bytes();
  return out;
}

// True if any argv equals "--net": the fig4/fig5 binaries accept it to run
// the client over the socket front-end instead of in-process.
inline bool net_flag(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--net") == 0) return true;
  }
  return false;
}

// "--loops N": event-loop count for the --net front-end (default 1, the
// pre-sharding shape). CI's asan-net job smokes fig4/fig5 with
// `--net --loops 2` to cover the multi-loop path under sanitizers.
inline int loops_flag(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--loops") == 0) {
      const int n = std::atoi(argv[i + 1]);
      if (n >= 1 && n <= 64) return n;
    }
  }
  return 1;
}

inline std::uint64_t cassandra_records() {
  // ~15k 1KB rows (column-chain encoded, ~22 MB) + retained commit log (~21 MB) keep
  // the 64 MB scaled heap at ~75% occupancy under the stress
  // configuration — saturated enough that ParallelOld must run repeated
  // full collections, while the concurrent collectors can (mostly) keep
  // up, as in the paper's §4.1.
  return env::scaled(12000);
}

inline std::uint64_t cassandra_operations() { return env::scaled(150000); }

}  // namespace mgc::bench
