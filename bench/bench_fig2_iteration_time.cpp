// Figure 2: per-iteration execution time of xalan (iterations 4-10, after
// warm-up) for all six collectors, with and without the forced system GC.
// --json persists per-collector final-iteration times into the perf
// trajectory; --quick smoke-scales the workload.
#include "bench_common.h"
#include "bench_json.h"

int main(int argc, char** argv) {
  using namespace mgc;
  using namespace mgc::dacapo;
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  bench::banner("Figure 2: execution time for xalan per iteration",
                "Figure 2(a,b)");

  bench::BenchReport report("fig2", args);
  for (const bool system_gc : {true, false}) {
    std::cout << "\n--- Figure 2(" << (system_gc ? "a) System GC" : "b) No System GC")
              << ") ---\n";
    Table t("xalan per-iteration wall time (ms), iterations 4..10");
    std::vector<std::string> head = {"GC"};
    for (int i = 4; i <= 10; ++i) head.push_back("it" + std::to_string(i));
    head.push_back("final rank");
    t.header(head);

    std::vector<std::pair<double, std::string>> finals;
    std::vector<std::vector<std::string>> rows;
    for (GcKind gc : bench::bench_gc_kinds()) {
      HarnessOptions opts;
      opts.iterations = 10;
      opts.system_gc_between_iterations = system_gc;
      const HarnessResult res =
          run_benchmark(bench::paper_baseline(gc), "xalan", opts);
      std::vector<std::string> row = {gc_name(gc)};
      for (std::size_t i = 3; i < res.iteration_s.size(); ++i) {
        row.push_back(Table::num(res.iteration_s[i] * 1e3, 1));
      }
      finals.emplace_back(res.final_iteration_s, gc_name(gc));
      rows.push_back(row);
      report.set_collector_metric(
          gc, std::string(system_gc ? "sysgc" : "nosysgc") + "_final_iter_ms",
          res.final_iteration_s * 1e3);
      report.set_collector_metric(
          gc, std::string(system_gc ? "sysgc" : "nosysgc") + "_total_cpu_s",
          res.total_cpu_s);
    }
    std::sort(finals.begin(), finals.end());
    for (auto& row : rows) {
      int rank = 1;
      for (const auto& [dur, name] : finals) {
        if (name == row.front()) break;
        ++rank;
      }
      row.push_back("#" + std::to_string(rank));
      t.row(row);
    }
    t.print(std::cout);
    report.add_table(t);
    std::cout << "fastest final iteration: " << finals.front().second
              << ", slowest: " << finals.back().second << "\n";
  }
  std::cout << "Expected shape: with system GC, ParallelOld has the best final\n"
               "iteration and G1 the worst (Parallel second worst: serial full\n"
               "GC); without system GC all collectors converge.\n";
  return report.write() ? 0 : 1;
}
