// The distilled-cost study ("Distilling the Real Cost of Production
// Garbage Collectors", applied to this reproduction's collectors): each
// collector's total cost — stop-the-world pauses + allocation slow path +
// write-barrier work + concurrent cycles stolen from mutators — over
// dacapo kernels and a YCSB kv workload, against an Epsilon baseline
// (bump-allocate, never collect) whose heap is sized to the workload's
// full allocation volume. The barrier channel is priced by an in-process
// calibration (Serial-vs-Epsilon reference-store loop).
//
// --json <path> persists the BENCH_distilled report; --quick smoke-scales.
#include "bench_common.h"
#include "bench_reports.h"

int main(int argc, char** argv) {
  using namespace mgc;
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  bench::banner("Distilled GC cost: pauses + allocation slow path + "
                "barriers + concurrent cycles, vs an Epsilon baseline",
                "the cost-accounting methodology (not a paper figure)");

  const Json report = bench::make_distilled_report(args);

  std::cout << "\nExpected shape: Epsilon's total cost is (near) zero — it is\n"
               "the empirical lower bound. The throughput collectors pay in\n"
               "pauses; CMS and G1 shift cost into concurrent cycles and\n"
               "barrier work that the pause columns alone would hide.\n";
  return bench::write_report(report, args.json_path) ? 0 : 1;
}
