#include "bench_reports.h"

#include <algorithm>
#include <iostream>

#include "bench_common.h"
#include "cassandra_common.h"
#include "runtime/heap_verifier.h"
#include "runtime/vm.h"

namespace mgc::bench {

namespace {

// Epsilon must hold a workload's entire allocation volume: nothing is
// ever reclaimed. 40% headroom covers TLAB tail waste and run-to-run
// allocation jitter; the floor keeps tiny quick runs comfortable.
std::size_t epsilon_heap_bytes(std::uint64_t allocated_bytes) {
  const auto sized = static_cast<std::size_t>(
      static_cast<double>(allocated_bytes) * 1.4);
  return std::max<std::size_t>(sized + 8 * MiB, 64 * MiB);
}

VmConfig epsilon_config(std::uint64_t allocated_bytes) {
  VmConfig cfg = VmConfig::baseline(GcKind::kEpsilon);
  cfg.heap_bytes = epsilon_heap_bytes(allocated_bytes);
  // Keep a small eden: Epsilon bumps through eden first and then treats
  // the old generation as more bump space, so the split is cosmetic, but
  // a paper-geometry young size would waste the survivor halves.
  cfg.young_bytes = std::min<std::size_t>(cfg.heap_bytes / 4, 16 * MiB);
  return cfg;
}

struct PauseStats {
  RunningStats roots_us, cards_us, evac_us;
  std::vector<double> pause_ms;
  GcFailureCounters fails;

  explicit PauseStats(const std::vector<PauseEvent>& events) {
    for (const PauseEvent& e : events) {
      pause_ms.push_back(e.duration_ms());
      if (e.phases.any()) {
        roots_us.add(static_cast<double>(e.phases.root_scan_ns) / 1e3);
        cards_us.add(static_cast<double>(e.phases.card_scan_ns) / 1e3);
        evac_us.add(static_cast<double>(e.phases.evac_drain_ns) / 1e3);
      }
      fails.promotion_failures += e.failures.promotion_failures;
      fails.concurrent_mode_failures += e.failures.concurrent_mode_failures;
      fails.evacuation_failures += e.failures.evacuation_failures;
    }
  }
  double p99_ms() const {
    return pause_ms.empty() ? 0.0 : percentile_of(pause_ms, 99.0);
  }
};

}  // namespace

Json make_fig1_report(const BenchArgs& args) {
  BenchReport report("fig1", args);
  const int iterations = args.quick ? 4 : 10;
  report.set_config("iterations", Json(iterations));

  for (const bool system_gc : {true, false}) {
    const std::string mode = system_gc ? "sysgc" : "nosysgc";
    std::cout << "\n--- Figure 1(" << (system_gc ? "a) System GC" : "b) No System GC")
              << " ---\n";
    Table summary(std::string("xalan pause summary, system GC ") +
                  (system_gc ? "on" : "off"));
    summary.header({"GC", "pauses", "full", "max pause (ms)", "avg pause (ms)",
                    "p99 pause (ms)", "roots (us)", "cards (us)", "evac (us)",
                    "promo-fail", "cms-fail", "evac-fail", "total exec (s)"});
    for (GcKind gc : bench_gc_kinds()) {
      dacapo::HarnessOptions opts;
      opts.iterations = iterations;
      opts.system_gc_between_iterations = system_gc;
      const dacapo::HarnessResult res =
          dacapo::run_benchmark(paper_baseline(gc), "xalan", opts);

      std::vector<SeriesPoint> pts;
      for (const PauseEvent& e : res.pause_events) {
        pts.push_back({ns_to_s(e.start_ns - res.vm_origin_ns),
                       e.duration_ms()});
      }
      print_series(std::cout,
                   std::string(gc_name(gc)) + "/" + mode, pts);
      const PauseStats st(res.pause_events);
      summary.row({gc_name(gc), std::to_string(res.pauses.pauses),
                   std::to_string(res.pauses.full_pauses),
                   Table::num(res.pauses.max_s * 1e3),
                   Table::num(res.pauses.avg_s * 1e3),
                   Table::num(st.p99_ms()),
                   Table::num(st.roots_us.mean(), 1),
                   Table::num(st.cards_us.mean(), 1),
                   Table::num(st.evac_us.mean(), 1),
                   std::to_string(st.fails.promotion_failures),
                   std::to_string(st.fails.concurrent_mode_failures),
                   std::to_string(st.fails.evacuation_failures),
                   Table::num(res.total_s, 3)});

      // The guarded trajectory: pause-time statistics plus the PR 2
      // critical-path phase counters (word-wise card scan, chunked root
      // scan) whose loss would show up here as a many-fold jump.
      report.set_collector_metric(gc, mode + "_pauses",
                                  static_cast<double>(res.pauses.pauses));
      report.set_collector_metric(gc, mode + "_full_pauses",
                                  static_cast<double>(res.pauses.full_pauses));
      report.set_collector_metric(gc, mode + "_max_pause_ms",
                                  res.pauses.max_s * 1e3);
      report.set_collector_metric(gc, mode + "_avg_pause_ms",
                                  res.pauses.avg_s * 1e3);
      report.set_collector_metric(gc, mode + "_p99_pause_ms", st.p99_ms());
      report.set_collector_metric(gc, mode + "_root_scan_us_avg",
                                  st.roots_us.mean());
      report.set_collector_metric(gc, mode + "_card_scan_us_avg",
                                  st.cards_us.mean());
      report.set_collector_metric(
          gc, mode + "_degraded_pauses",
          static_cast<double>(st.fails.promotion_failures +
                              st.fails.concurrent_mode_failures +
                              st.fails.evacuation_failures));
    }
    summary.print(std::cout);
    report.add_table(summary);
  }
  return report.to_json();
}

double calibrate_barrier_ns_per_op() {
  // Price one card-table barrier operation: the identical reference-store
  // loop under Serial (card barrier active, holder tenured into the old
  // generation) and under Epsilon (stores run bare); the per-op delta is
  // the barrier cost. Epsilon is the control rather than "barrier code
  // commented out", so both sides pay the same set_ref call overhead.
  const std::uint64_t kStores = 1'000'000;
  auto store_loop_ns = [&](GcKind gc) {
    // Real MiB, not paper units: the loop only keeps two objects live.
    VmConfig cfg = VmConfig::baseline(gc);
    cfg.heap_bytes = 64 * MiB;
    cfg.young_bytes = 16 * MiB;
    Vm vm(cfg);
    Vm::MutatorScope scope(vm, "calibrate");
    Mutator& m = scope.mutator();
    Local holder(m, m.alloc(/*num_refs=*/2, /*payload_words=*/2));
    Local value(m, m.alloc(/*num_refs=*/0, /*payload_words=*/2));
    if (gc != GcKind::kEpsilon) {
      // Two full collections tenure both objects into the old generation,
      // arming the generational post-barrier for every store below.
      m.system_gc();
      m.system_gc();
    }
    Stopwatch sw;
    for (std::uint64_t i = 0; i < kStores; ++i) {
      m.set_ref(holder.get(), i & 1, value.get());
    }
    return static_cast<double>(sw.elapsed_ns());
  };
  const double with_barrier = store_loop_ns(GcKind::kSerial);
  const double without = store_loop_ns(GcKind::kEpsilon);
  return std::max(0.0, (with_barrier - without) /
                           static_cast<double>(kStores));
}

Json make_distilled_report(const BenchArgs& args) {
  BenchReport report("distilled", args);
  const double barrier_ns = calibrate_barrier_ns_per_op();
  report.set_config("barrier_ns_per_op", Json(barrier_ns));
  std::cout << "calibrated card-barrier cost: " << barrier_ns << " ns/op\n";

  const std::vector<std::string> kernels =
      args.quick ? std::vector<std::string>{"xalan"}
                 : std::vector<std::string>{"xalan", "lusearch"};
  const int iterations = args.quick ? 3 : 6;
  report.set_config("iterations", Json(iterations));

  auto add_cost_row = [&](Table& t, BenchReport& rep,
                          const std::string& workload, GcKind gc,
                          const GcCostSnapshot& cost, double wall_s,
                          double epsilon_wall_s) {
    const double pause_ms = static_cast<double>(cost.pause_ns) / 1e6;
    const double slow_ms = static_cast<double>(cost.alloc_slow_ns) / 1e6;
    const double barrier_ms =
        barrier_ns * static_cast<double>(cost.barrier_ops()) / 1e6;
    const double conc_ms = static_cast<double>(cost.concurrent_ns) / 1e6;
    const double total_ms =
        static_cast<double>(cost.total_ns(barrier_ns)) / 1e6;
    const double overhead_pct =
        epsilon_wall_s > 0.0 ? (wall_s / epsilon_wall_s - 1.0) * 100.0 : 0.0;
    t.row({gc_name(gc), Table::num(pause_ms), Table::num(slow_ms),
           std::to_string(cost.barrier_ops()), Table::num(barrier_ms),
           Table::num(conc_ms), std::to_string(cost.concurrent_cycles),
           Table::num(total_ms), Table::num(wall_s, 3),
           Table::pct(overhead_pct)});
    rep.set_collector_metric(gc, workload + "_pause_ms", pause_ms);
    rep.set_collector_metric(gc, workload + "_alloc_slow_ms", slow_ms);
    rep.set_collector_metric(gc, workload + "_total_cost_ms", total_ms);
    // Barrier-op and concurrent-cycle counts stay table-only: both swing
    // multi-fold with collection timing (when a region turns old, whether
    // a background cycle fires), too noisy for a lower-is-better guard.
    if (gc == GcKind::kEpsilon) {
      // Structural invariants of the baseline: zero collections, zero
      // barrier work — "_exact" makes any non-zero fresh value fail.
      rep.set_collector_metric(gc, workload + "_pauses_exact",
                               static_cast<double>(cost.pauses));
      rep.set_collector_metric(gc, workload + "_barrier_ops_exact",
                               static_cast<double>(cost.barrier_ops()));
    }
  };

  // --- dacapo kernels ---------------------------------------------------------
  for (const std::string& kernel : kernels) {
    std::cout << "\n--- distilled cost: " << kernel << " ---\n";
    Table t("distilled GC cost, " + kernel);
    t.header({"GC", "pause (ms)", "alloc-slow (ms)", "barrier ops",
              "barrier (ms)", "concurrent (ms)", "conc cycles",
              "total cost (ms)", "wall (s)", "overhead vs Epsilon"});

    dacapo::HarnessOptions opts;
    opts.iterations = iterations;
    opts.system_gc_between_iterations = false;  // no forced collections:
    // the distillation measures the collectors' *own* policy costs.

    struct Run {
      GcKind gc;
      dacapo::HarnessResult res;
    };
    std::vector<Run> runs;
    std::uint64_t alloc_volume = 0;
    for (GcKind gc : bench_gc_kinds()) {
      runs.push_back({gc, dacapo::run_benchmark(paper_baseline(gc), kernel,
                                                opts)});
      alloc_volume = std::max(alloc_volume, runs.back().res.allocated_bytes);
    }

    const dacapo::HarnessResult eps =
        dacapo::run_benchmark(epsilon_config(alloc_volume), kernel, opts);
    const double eps_wall = eps.total_s;

    add_cost_row(t, report, kernel, GcKind::kEpsilon, eps.cost, eps_wall,
                 eps_wall);
    for (const Run& r : runs) {
      add_cost_row(t, report, kernel, r.gc, r.res.cost, r.res.total_s,
                   eps_wall);
    }
    t.print(std::cout);
    report.add_table(t);
  }

  // --- YCSB kv workload -------------------------------------------------------
  {
    std::cout << "\n--- distilled cost: ycsb ---\n";
    Table t("distilled GC cost, YCSB 50/50 kv workload");
    t.header({"GC", "pause (ms)", "alloc-slow (ms)", "barrier ops",
              "barrier (ms)", "concurrent (ms)", "conc cycles",
              "total cost (ms)", "wall (s)", "overhead vs Epsilon"});

    const std::uint64_t records = args.quick ? 1500 : cassandra_records();
    const std::uint64_t operations =
        args.quick ? 8000 : cassandra_operations();

    struct Run {
      GcKind gc;
      CassandraRun res;
    };
    std::vector<Run> runs;
    std::uint64_t alloc_volume = 0;
    for (GcKind gc : bench_gc_kinds()) {
      runs.push_back(
          {gc, run_cassandra_ycsb(gc, /*stress=*/false, records, operations)});
      alloc_volume = std::max(alloc_volume, runs.back().res.allocated_bytes);
    }

    const CassandraRun eps = run_cassandra_ycsb(
        GcKind::kEpsilon, /*stress=*/false, records, operations,
        /*read_prop=*/0.5, /*update_prop=*/0.5, /*insert_prop=*/0.0,
        /*use_net=*/false, epsilon_heap_bytes(alloc_volume));
    const double eps_wall = eps.load.duration_s() + eps.run.duration_s();

    add_cost_row(t, report, "ycsb", GcKind::kEpsilon, eps.cost, eps_wall,
                 eps_wall);
    for (const Run& r : runs) {
      add_cost_row(t, report, "ycsb", r.gc, r.res.cost,
                   r.res.load.duration_s() + r.res.run.duration_s(), eps_wall);
    }
    t.print(std::cout);
    report.add_table(t);
  }

  return report.to_json();
}

}  // namespace mgc::bench
