// Persisted benchmark reports (BENCH_<name>.json) and the regression
// guard that compares a fresh run against a committed baseline.
//
// Every bench_* binary accepts:
//
//   --json <path>   write a schema-versioned JSON report next to the
//                   normal stdout tables
//   --quick         smoke-scale the workload (MGC_SCALE=0.05 unless the
//                   environment already chose a scale)
//
// Report schema (version 1):
//
//   {
//     "schema": "mgc-bench-report",
//     "schema_version": 1,
//     "bench": "fig1",
//     "git_sha": "...",            // best effort, "unknown" outside git
//     "config": {...},             // scale/threads/seed/quick
//     "metrics": {...},            // flat name -> number, guarded
//     "collectors": {"Serial": {...}, ...},  // per-collector, guarded
//     "tables": [...]              // the stdout tables, structured
//   }
//
// Guard semantics (compare_reports): every metric present in the baseline
// must exist in the fresh run and must not exceed baseline * (1 +
// threshold). All metrics are lower-is-better by convention (times,
// counts); a zero baseline is a structural invariant (e.g. "Epsilon ran
// zero pauses") and any non-zero fresh value violates it. A malformed or
// schema-mismatched baseline is itself a violation — the guard fails
// loud, never silently passes. Re-baselining: re-run the bench with
// --json pointed at bench/baselines/BENCH_<name>.json and commit the
// diff (see EXPERIMENTS.md).
#pragma once

#include <string>
#include <vector>

#include "runtime/gc_kind.h"
#include "support/json.h"
#include "support/table.h"

namespace mgc::bench {

inline constexpr int kBenchSchemaVersion = 1;
inline constexpr const char* kBenchSchemaName = "mgc-bench-report";

struct BenchArgs {
  std::string json_path;  // empty = no report written
  bool quick = false;
};

// Parses --json/--quick (other argv entries are ignored, so binaries with
// extra flags like --net keep working). Must run before the first
// env::scale() read: --quick lowers MGC_SCALE for the whole process
// unless the environment already set one.
BenchArgs parse_bench_args(int argc, char** argv);

// Current commit, best effort ("unknown" when git is unavailable).
std::string git_sha();

// The collectors a bench iterates: the MGC_GC override if set (any name
// including Epsilon), otherwise the paper's six.
std::vector<GcKind> bench_gc_kinds();

class BenchReport {
 public:
  BenchReport(std::string bench_name, BenchArgs args);

  // Guarded scalar metrics; lower is better by convention.
  void set_metric(const std::string& name, double value);
  void set_collector_metric(GcKind gc, const std::string& name, double value);
  // Unguarded context (strings/numbers) recorded under "config".
  void set_config(const std::string& key, Json value);
  void add_table(const Table& t);

  Json to_json() const;
  // Writes to the --json path; no-op (returns true) when none was given.
  // Prints the written path to stdout so CI logs show the artifact.
  bool write() const;

 private:
  std::string name_;
  BenchArgs args_;
  Json config_ = Json::object();
  Json metrics_ = Json::object();
  Json collectors_ = Json::object();
  Json tables_ = Json::array();
};

// Reads and parses a report file. False (with *err) on IO/parse failure.
bool load_report(const std::string& path, Json* out, std::string* err);

// Writes an already-built report; no-op (returns true) when path is
// empty. Prints the written path so CI logs show the artifact.
bool write_report(const Json& report, const std::string& path);

// Returns all guard violations, empty when the fresh run is clean.
// threshold_pct is the allowed relative increase per metric, e.g. 300.0
// lets a counter triple before failing — generous on purpose, because
// tier-1 CI runs on noisy shared hosts and the guard is after
// *algorithmic* regressions (a lost fast path, a 10x blowup), not
// single-digit jitter. MGC_PERF_THRESHOLD overrides it at run time.
std::vector<std::string> compare_reports(const Json& baseline,
                                         const Json& fresh,
                                         double threshold_pct);

}  // namespace mgc::bench
