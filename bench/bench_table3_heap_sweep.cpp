// Table 3: statistics for the h2 benchmark under ConcurrentMarkSweep with
// varying heap / young-generation sizes — the paper's evidence that the
// average pause can *grow* as the young generation shrinks, and that tiny
// heaps drown in collections (>50% of wall time paused at 250MB).
// ParallelOld is printed alongside, as §3.3 notes it behaved as expected.
#include "bench_common.h"
#include "bench_json.h"

namespace {

struct SweepPoint {
  double heap_gb;
  double young_gb;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace mgc;
  using namespace mgc::dacapo;
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  bench::banner("Table 3: h2 statistics with different heap and young "
                "generation sizes",
                "Table 3 / §3.3");

  bench::BenchReport report("table3", args);

  const SweepPoint points[] = {
      {64, 6},        {64, 12},       {64, 24},      {64, 48},
      {1, 200.0 / 1024}, {1, 100.0 / 1024}, {0.5, 200.0 / 1024},
      {0.5, 100.0 / 1024}, {0.25, 200.0 / 1024}, {0.25, 100.0 / 1024},
  };

  for (GcKind gc : {GcKind::kCms, GcKind::kParallelOld}) {
    Table t(std::string("h2 under ") + gc_name(gc) +
            " (10 iterations, no system GC)");
    t.header({"Heap-YoungGen", "#pauses(full)", "AVG pause(ms)",
              "Total pause(ms)", "Total exec(ms)", "%time paused"});
    for (const SweepPoint& p : points) {
      VmConfig cfg = bench::config_gb(gc, p.heap_gb, p.young_gb);
      // The smallest configurations need a small TLAB to fit the eden.
      if (cfg.young_bytes <= 256 * KiB) cfg.tlab_bytes = 2 * KiB;
      HarnessOptions opts;
      opts.iterations = 10;
      opts.system_gc_between_iterations = false;
      const HarnessResult res = run_benchmark(cfg, "h2", opts);
      const double pct =
          res.total_s > 0 ? 100.0 * res.pauses.total_s / res.total_s : 0.0;
      const std::string label = scale::label(cfg.heap_bytes, cfg.young_bytes);
      report.set_collector_metric(gc, label + "_avg_pause_ms",
                                  res.pauses.avg_s * 1e3);
      report.set_collector_metric(gc, label + "_pct_paused", pct);
      t.row({label,
             std::to_string(res.pauses.pauses) + "(" +
                 std::to_string(res.pauses.full_pauses) + ")",
             Table::num(res.pauses.avg_s * 1e3, 3),
             Table::num(res.pauses.total_s * 1e3, 2),
             Table::num(res.total_s * 1e3, 1), Table::num(pct, 1)});
    }
    t.print(std::cout);
    report.add_table(t);
  }
  std::cout << "Expected shape (CMS): at the 64GB heap the smallest young\n"
               "generation shows a *longer* average pause than larger ones\n"
               "(higher survival fraction + free-list promotion); the 250MB\n"
               "rows collapse into hundreds of mostly-full collections with\n"
               "a large fraction of wall time paused.\n";
  return report.write() ? 0 : 1;
}
