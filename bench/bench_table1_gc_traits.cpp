// Table 1: the list of garbage collectors and their structural
// characteristics. Printed from the implementations' own trait metadata so
// the table is, by construction, what the code actually does.
#include "bench_common.h"
#include "runtime/gc_kind.h"

int main() {
  using namespace mgc;
  bench::banner("Table 1: garbage collectors and their characteristics",
                "Table 1");

  auto yn = [](bool b) { return b ? std::string("Yes") : std::string("No"); };
  Table t("GCs: Young generation / Old generation collection structure");
  t.header({"GC", "Y.Parallel", "Y.Copying", "Y.Conc.Mark", "Y.Conc.Copy",
            "O.Parallel", "O.Compacting", "O.Conc.Mark", "O.Conc.Sweep"});
  for (GcKind k : all_gc_kinds()) {
    const GcTraits& tr = gc_traits(k);
    t.row({tr.short_name, yn(tr.young_parallel), yn(tr.young_copying),
           yn(tr.young_concurrent_mark), yn(tr.young_concurrent_copy),
           yn(tr.old_parallel), yn(tr.old_compacting),
           yn(tr.old_concurrent_mark), yn(tr.old_concurrent_sweep)});
  }
  t.print(std::cout);
  std::cout << "(CMS row: old compaction is 'No'/irrelevant — the free-list\n"
               " space never compacts outside the concurrent-mode-failure\n"
               " fallback, matching the paper's footnote.)\n";
  return 0;
}
