// Table 1: the list of garbage collectors and their structural
// characteristics. Printed from the implementations' own trait metadata so
// the table is, by construction, what the code actually does. The --json
// report captures the table plus a per-kind trait fingerprint — a purely
// structural (machine-independent) entry in the perf trajectory.
#include "bench_common.h"
#include "bench_json.h"
#include "runtime/gc_kind.h"

int main(int argc, char** argv) {
  using namespace mgc;
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  bench::banner("Table 1: garbage collectors and their characteristics",
                "Table 1");

  bench::BenchReport report("table1", args);
  auto yn = [](bool b) { return b ? std::string("Yes") : std::string("No"); };
  Table t("GCs: Young generation / Old generation collection structure");
  t.header({"GC", "Y.Parallel", "Y.Copying", "Y.Conc.Mark", "Y.Conc.Copy",
            "O.Parallel", "O.Compacting", "O.Conc.Mark", "O.Conc.Sweep"});
  for (GcKind k : all_gc_kinds()) {
    const GcTraits& tr = gc_traits(k);
    t.row({tr.short_name, yn(tr.young_parallel), yn(tr.young_copying),
           yn(tr.young_concurrent_mark), yn(tr.young_concurrent_copy),
           yn(tr.old_parallel), yn(tr.old_compacting),
           yn(tr.old_concurrent_mark), yn(tr.old_concurrent_sweep)});
    // 8-bit trait fingerprint: any structural drift fails the guard.
    const unsigned bits =
        (tr.young_parallel << 7) | (tr.young_copying << 6) |
        (tr.young_concurrent_mark << 5) | (tr.young_concurrent_copy << 4) |
        (tr.old_parallel << 3) | (tr.old_compacting << 2) |
        (tr.old_concurrent_mark << 1) |
        static_cast<unsigned>(tr.old_concurrent_sweep);
    report.set_collector_metric(k, "trait_bits_exact", static_cast<double>(bits));
  }
  t.print(std::cout);
  report.add_table(t);
  report.set_metric("paper_collectors_exact",
                    static_cast<double>(all_gc_kinds().size()));
  report.set_metric("every_collector_exact",
                    static_cast<double>(every_gc_kind().size()));
  std::cout << "(CMS row: old compaction is 'No'/irrelevant — the free-list\n"
               " space never compacts outside the concurrent-mode-failure\n"
               " fallback, matching the paper's footnote.)\n";
  return report.write() ? 0 : 1;
}
