// Table 2: benchmark-stability selection. Every DaCapo benchmark runs R
// times (10 iterations each, system GC between iterations, baseline
// ParallelOld configuration); the relative standard deviation of the final
// iteration and of the total execution time decides the stable subset
// (<= 5% in at least one metric). Crashing benchmarks are reported as such.
#include "bench_common.h"
#include "bench_json.h"

int main(int argc, char** argv) {
  using namespace mgc;
  using namespace mgc::dacapo;
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  bench::banner("Table 2: relative standard deviation of total execution "
                "time and final iteration",
                "Table 2 / §3.2");

  bench::BenchReport report("table2", args);
  const int runs = bench::repeat_count(10);
  report.set_config("runs", Json(runs));
  const VmConfig cfg = bench::paper_baseline(GcKind::kParallelOld);

  Table t("RSD over " + std::to_string(runs) +
          " runs x 10 iterations (baseline config, system GC on)");
  t.header({"Benchmark", "Final iteration (%)", "Total execution time (%)",
            "Status"});  // RSDs over process CPU time (see EXPERIMENTS.md)

  std::vector<std::string> selected;
  for (const std::string& name : all_benchmarks()) {
    std::vector<double> finals;
    std::vector<double> totals;
    bool crashed = false;
    for (int r = 0; r < runs; ++r) {
      HarnessOptions opts;
      opts.iterations = 10;
      opts.system_gc_between_iterations = true;
      opts.seed = 42 + static_cast<std::uint64_t>(r) * 1000003;
      const HarnessResult res = run_benchmark(cfg, name, opts);
      if (res.crashed) {
        crashed = true;
        break;
      }
      finals.push_back(res.final_iteration_cpu_s);
      totals.push_back(res.total_cpu_s);
    }
    if (crashed) {
      t.row({name, "-", "-", "crashed (excluded)"});
      report.set_metric(name + "_crashed_exact", 1.0);
      continue;
    }
    const double rsd_final = rsd_percent_of(finals);
    const double rsd_total = rsd_percent_of(totals);
    const bool stable = rsd_final <= 5.0 || rsd_total <= 5.0;
    if (stable) selected.push_back(name);
    // RSDs are noise measurements; guard them with the wall-time threshold
    // rather than exactly. A benchmark leaving the subset shows up via the
    // selected-count fingerprint below.
    report.set_metric(name + "_rsd_final_pct", rsd_final);
    report.set_metric(name + "_rsd_total_pct", rsd_total);
    t.row({name, Table::num(rsd_final, 1), Table::num(rsd_total, 1),
           stable ? "selected" : "excluded (>5% both)"});
  }
  t.print(std::cout);
  report.add_table(t);
  report.set_metric("selected_count",
                    static_cast<double>(selected.size()));

  std::cout << "Selected subset:";
  for (const auto& n : selected) std::cout << ' ' << n;
  std::cout << "\nPaper's subset:  ";
  for (const auto& n : stable_subset()) std::cout << ' ' << n;
  std::cout << "\n";
  return report.write() ? 0 : 1;
}
