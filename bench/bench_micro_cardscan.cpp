// Card-scan ablation microbenchmark: the proof obligation for the
// word-wise card table sweep on the young-GC pause critical path.
//
// Sweeps a card table covering a synthetic old generation at dirty-card
// densities from 0.1% to 50% with three scanners:
//
//   serial-byte : one atomic byte load per card (the pre-optimization loop)
//   word-wise   : CardTable::visit_dirty — 8 cards per 64-bit load,
//                 clean words skipped with a single load
//   striped-par : N threads claiming fixed-size card strips through a
//                 ChunkClaimer, each sweeping its strips word-wise (the
//                 scavenger's discovery scheme)
//
// Each variant counts the cards it visits; the bench aborts if the counts
// disagree. Run with --quick for the CI smoke configuration (small table,
// few repetitions).
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "gc/parallel_work.h"
#include "heap/card_table.h"
#include "support/clock.h"
#include "support/rng.h"
#include "support/table.h"
#include "support/units.h"

namespace {

using namespace mgc;

struct SweepTimes {
  double serial_ms = 0;
  double word_ms = 0;
  double striped_ms = 0;
  std::size_t dirty = 0;
};

constexpr std::size_t kCardsPerStrip = 256;

// The pre-optimization scanner: one acquire byte load per card.
std::size_t sweep_serial_byte(const CardTable& cards, std::size_t n) {
  std::size_t visited = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (cards.needs_young_scan(i)) ++visited;
  }
  return visited;
}

std::size_t sweep_word(const CardTable& cards, std::size_t n) {
  std::size_t visited = 0;
  cards.visit_dirty(0, n, [&](std::size_t) { ++visited; });
  return visited;
}

std::size_t sweep_striped(const CardTable& cards, std::size_t n, int threads) {
  std::atomic<std::size_t> visited{0};
  ChunkClaimer claimer((n + kCardsPerStrip - 1) / kCardsPerStrip, 1);
  auto body = [&] {
    std::size_t local = 0, b = 0, e = 0;
    while (claimer.claim(&b, &e)) {
      const std::size_t first = b * kCardsPerStrip;
      const std::size_t last = std::min(n, e * kCardsPerStrip);
      cards.visit_dirty(first, last, [&](std::size_t) { ++local; });
    }
    visited.fetch_add(local, std::memory_order_relaxed);
  };
  std::vector<std::thread> ts;
  ts.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) ts.emplace_back(body);
  for (auto& t : ts) t.join();
  return visited.load(std::memory_order_relaxed);
}

SweepTimes measure(CardTable& cards, std::size_t n, double density, int reps,
                   int threads, Rng& rng) {
  cards.clear_all();
  std::size_t dirty = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.chance(density)) {
      cards.dirty_index(i);
      ++dirty;
    }
  }

  SweepTimes out;
  out.dirty = dirty;
  for (int r = 0; r < reps; ++r) {
    Stopwatch sw;
    const std::size_t a = sweep_serial_byte(cards, n);
    out.serial_ms += sw.elapsed_ms();

    sw.restart();
    const std::size_t b = sweep_word(cards, n);
    out.word_ms += sw.elapsed_ms();

    sw.restart();
    const std::size_t c = sweep_striped(cards, n, threads);
    out.striped_ms += sw.elapsed_ms();

    if (a != dirty || b != dirty || c != dirty) {
      std::cerr << "FAIL: scanner disagreement at density " << density
                << " (seeded " << dirty << ", serial " << a << ", word " << b
                << ", striped " << c << ")\n";
      std::exit(1);
    }
  }
  out.serial_ms /= reps;
  out.word_ms /= reps;
  out.striped_ms /= reps;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  const bool quick = args.quick;
  bench::BenchReport report("cardscan", args);

  // The table never touches the covered memory, only its own card bytes,
  // so the covered "old generation" is pure address space.
  const std::size_t covered = (quick ? 64 : 512) * MiB;
  const int reps = quick ? 3 : 10;
  const int threads = [] {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 2 : static_cast<int>(hw > 8 ? 8 : hw);
  }();

  CardTable cards;
  cards.initialize(reinterpret_cast<char*>(kCardSize), covered);
  const std::size_t n = covered >> kCardShift;

  std::cout << "card-scan ablation: " << n << " cards ("
            << (covered >> 20) << " MiB covered), " << threads
            << " scan threads, " << reps << " reps"
            << (quick ? " [--quick]" : "") << "\n";

  Table tbl("dirty-card sweep, ms per full-table scan (lower is better)");
  tbl.header({"density", "dirty", "serial-byte", "word-wise", "striped-par",
              "word speedup", "striped speedup"});

  Rng rng(0x5ca9d5);
  bool word_speedup_ok = false;
  for (double pct : {0.1, 0.5, 1.0, 5.0, 20.0, 50.0}) {
    const SweepTimes t = measure(cards, n, pct / 100.0, reps, threads, rng);
    const double su_word = t.word_ms > 0 ? t.serial_ms / t.word_ms : 0;
    const double su_striped = t.striped_ms > 0 ? t.serial_ms / t.striped_ms : 0;
    if (pct <= 1.0 && su_word >= 4.0) word_speedup_ok = true;
    tbl.row({Table::pct(pct, 1), std::to_string(t.dirty),
             Table::num(t.serial_ms, 3), Table::num(t.word_ms, 3),
             Table::num(t.striped_ms, 3), Table::num(su_word, 1) + "x",
             Table::num(su_striped, 1) + "x"});
    // Guarded as a *ratio* so the trajectory is machine-independent:
    // losing the word-wise sweep (PR 2's critical-path optimization)
    // drives word/serial from ~0.1-0.5 toward 1.0 at low density, a
    // many-fold jump. Only the low-density points are guarded — that is
    // the young-GC common case — and only the word sweep: the striped
    // scan is dominated by thread-spawn noise at --quick table sizes.
    if (pct <= 1.0 && t.serial_ms > 0) {
      report.set_metric("word_over_serial_at_" + Table::pct(pct, 1),
                        t.word_ms / t.serial_ms);
    }
  }
  std::cout << tbl.to_string();
  report.add_table(tbl);

  // Acceptance: at low density (the common young-GC case) the word-wise
  // sweep must beat byte-at-a-time by >= 4x.
  std::cout << (word_speedup_ok
                    ? "PASS: word-wise sweep >= 4x serial at <= 1% density\n"
                    : "WARN: word-wise sweep below 4x target at low density\n");
  return report.write() ? 0 : 1;
}
