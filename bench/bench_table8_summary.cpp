// Table 8: the qualitative verdict table — throughput and pause-time
// ratings of the three main collectors on the DaCapo suite and on the
// Cassandra-like server, derived from fresh measurements rather than
// hard-coded.
#include <algorithm>
#include <map>

#include "bench_json.h"
#include "cassandra_common.h"

namespace {

struct Measured {
  double dacapo_total_s = 0;    // total time over the stable subset
  double dacapo_max_pause = 0;  // seconds
  double cass_ops_s = 0;        // transaction-phase throughput
  double cass_max_pause = 0;    // seconds
};

}  // namespace

int main(int argc, char** argv) {
  using namespace mgc;
  using namespace mgc::bench;
  using namespace mgc::dacapo;
  const BenchArgs args = parse_bench_args(argc, argv);
  banner("Table 8: advantages and disadvantages of the three main GCs",
         "Table 8 / §6");

  BenchReport report("table8", args);

  std::map<GcKind, Measured> results;

  for (GcKind gc : main_gc_kinds()) {
    Measured& mres = results[gc];
    for (const std::string& name : {std::string("xalan"), std::string("pmd"),
                                    std::string("h2")}) {
      HarnessOptions opts;
      opts.iterations = 6;
      opts.system_gc_between_iterations = true;  // the paper's default mode
      const HarnessResult res =
          run_benchmark(paper_baseline(gc), name, opts);
      mres.dacapo_total_s += res.total_s;
      mres.dacapo_max_pause = std::max(mres.dacapo_max_pause, res.pauses.max_s);
    }
    const CassandraRun r = run_cassandra_ycsb(
        gc, /*stress=*/true, cassandra_records() / 2,
        cassandra_operations() / 2);
    mres.cass_ops_s = r.run.throughput_ops_s();
    mres.cass_max_pause = r.pauses.max_s;
  }

  // Rate relative to the best measurement in each column.
  double best_dacapo = 1e300, best_cass = 0, least_dacapo_pause = 1e300,
         least_cass_pause = 1e300;
  for (auto& [gc, mres] : results) {
    best_dacapo = std::min(best_dacapo, mres.dacapo_total_s);
    best_cass = std::max(best_cass, mres.cass_ops_s);
    least_dacapo_pause = std::min(least_dacapo_pause, mres.dacapo_max_pause);
    least_cass_pause = std::min(least_cass_pause, mres.cass_max_pause);
  }
  auto rate_throughput = [](double ratio) {
    if (ratio <= 1.10) return "good";
    if (ratio <= 1.35) return "fairly good";
    return "bad";
  };
  auto rate_pause = [](double ratio) {
    if (ratio <= 1.5) return "short";
    if (ratio <= 8.0) return "acceptable";
    if (ratio <= 40.0) return "significant";
    return "unacceptable";
  };

  Table t("measured verdicts (rated against the best collector per column)");
  t.header({"GC", "Experiment", "Throughput", "Pause Time",
            "(total s / max pause ms)"});
  for (GcKind gc : main_gc_kinds()) {
    const Measured& mres = results[gc];
    t.row({gc_traits(gc).short_name, "DaCapo",
           rate_throughput(mres.dacapo_total_s / best_dacapo),
           rate_pause(mres.dacapo_max_pause / least_dacapo_pause),
           Table::num(mres.dacapo_total_s, 2) + " / " +
               Table::num(mres.dacapo_max_pause * 1e3, 1)});
    t.row({gc_traits(gc).short_name, "Cassandra",
           rate_throughput(best_cass / std::max(1.0, mres.cass_ops_s)),
           rate_pause(mres.cass_max_pause / least_cass_pause),
           Table::num(mres.cass_ops_s, 0) + " ops/s / " +
               Table::num(mres.cass_max_pause * 1e3, 1)});
    report.set_collector_metric(gc, "dacapo_total_s", mres.dacapo_total_s);
    report.set_collector_metric(gc, "dacapo_max_pause_ms",
                                mres.dacapo_max_pause * 1e3);
    report.set_collector_metric(gc, "cassandra_max_pause_ms",
                                mres.cass_max_pause * 1e3);
  }
  t.print(std::cout);
  report.add_table(t);
  std::cout << "Paper's verdicts: ParallelOld {DaCapo: good/short, Cassandra:\n"
               "good/unacceptable}; CMS {fairly good/acceptable, fairly\n"
               "good/significant}; G1 {bad/unacceptable (with system GC),\n"
               "fairly good/significant}.\n";
  return report.write() ? 0 : 1;
}
