// Ablation microbenchmarks (google-benchmark): the mechanisms behind the
// paper's observations — TLAB vs shared-eden allocation, write-barrier
// cost, work-stealing deque throughput, zipfian sampling, and the
// round-trip cost of a stop-the-world operation.
#include <benchmark/benchmark.h>

#include "runtime/managed.h"
#include "runtime/vm.h"
#include "support/rng.h"
#include "support/units.h"
#include "support/ws_deque.h"

namespace {

using namespace mgc;

VmConfig micro_config(GcKind gc, bool tlab) {
  VmConfig cfg;
  cfg.gc = gc;
  cfg.heap_bytes = 64 * MiB;
  cfg.young_bytes = 16 * MiB;
  cfg.tlab_enabled = tlab;
  cfg.gc_threads = 4;
  return cfg;
}

void BM_AllocTlabOn(benchmark::State& state) {
  Vm vm(micro_config(GcKind::kParallelOld, true));
  Vm::MutatorScope scope(vm, "bench");
  Mutator& m = scope.mutator();
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.alloc(2, 6));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_AllocTlabOn);

void BM_AllocTlabOff(benchmark::State& state) {
  Vm vm(micro_config(GcKind::kParallelOld, false));
  Vm::MutatorScope scope(vm, "bench");
  Mutator& m = scope.mutator();
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.alloc(2, 6));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_AllocTlabOff);

// Multi-threaded allocation: the TLAB's raison d'être. Each iteration
// performs a fixed batch of allocations on N mutator threads.
void BM_AllocContention(benchmark::State& state) {
  const bool tlab = state.range(0) != 0;
  const int threads = static_cast<int>(state.range(1));
  Vm vm(micro_config(GcKind::kParallelOld, tlab));
  constexpr int kBatch = 20000;
  for (auto _ : state) {
    vm.run_mutators(threads, [&](Mutator& m, int) {
      for (int i = 0; i < kBatch / threads; ++i) {
        benchmark::DoNotOptimize(m.alloc(1, 4));
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_AllocContention)
    ->Args({0, 2})
    ->Args({1, 2})
    ->Args({0, 8})
    ->Args({1, 8});

void BM_WriteBarrierCard(benchmark::State& state) {
  Vm vm(micro_config(GcKind::kParallelOld, true));
  Vm::MutatorScope scope(vm, "bench");
  Mutator& m = scope.mutator();
  Local a(m, m.alloc(1, 0));
  Local b(m, m.alloc(1, 0));
  for (auto _ : state) {
    m.set_ref(a.get(), 0, b.get());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_WriteBarrierCard);

void BM_WriteBarrierG1(benchmark::State& state) {
  VmConfig cfg = micro_config(GcKind::kG1, true);
  Vm vm(cfg);
  Vm::MutatorScope scope(vm, "bench");
  Mutator& m = scope.mutator();
  Local a(m, m.alloc(1, 0));
  Local b(m, m.alloc(1, 0));
  for (auto _ : state) {
    m.set_ref(a.get(), 0, b.get());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_WriteBarrierG1);

void BM_WsDequePushPop(benchmark::State& state) {
  WsDeque<void*> dq;
  int x = 0;
  for (auto _ : state) {
    dq.push(&x);
    benchmark::DoNotOptimize(dq.pop());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_WsDequePushPop);

void BM_ZipfianSample(benchmark::State& state) {
  Rng rng(42);
  ScrambledZipfian zipf(1000000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.sample(rng));
  }
}
BENCHMARK(BM_ZipfianSample);

// Round-trip of a stop-the-world operation with idle mutators: the floor
// under every pause the study measures.
void BM_SafepointRoundTrip(benchmark::State& state) {
  Vm vm(micro_config(GcKind::kParallelOld, true));
  Vm::MutatorScope scope(vm, "bench");
  Mutator& m = scope.mutator();
  for (auto _ : state) {
    m.system_gc();
  }
}
BENCHMARK(BM_SafepointRoundTrip);

}  // namespace

BENCHMARK_MAIN();
