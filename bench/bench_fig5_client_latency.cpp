// Figure 5 + Tables 5-7: client-side response time under the custom 50%
// read / 50% update workload for ParallelOld, CMS and G1. For each
// collector the binary prints the latency scatter (top 10000 points, as
// the paper plots), the GC pause overlay, and the latency band statistics.
#include "bench_json.h"
#include "cassandra_common.h"

int main(int argc, char** argv) {
  using namespace mgc;
  using namespace mgc::bench;
  const BenchArgs args = parse_bench_args(argc, argv);
  banner("Figure 5 + Tables 5-7: client response time per GC strategy",
         "Figure 5(a,b,c), Tables 5, 6, 7 / §4.2");
  const bool use_net = net_flag(argc, argv);
  const int loops = loops_flag(argc, argv);

  BenchReport report("fig5", args);
  std::cout << "transport: "
            << (use_net ? "loopback TCP (--net)" : "in-process") << "\n";

  const std::uint64_t records = cassandra_records();
  const std::uint64_t ops = cassandra_operations();

  for (GcKind gc : main_gc_kinds()) {
    std::cout << "\n####### " << gc_name(gc) << " #######\n";
    const CassandraRun r = run_cassandra_ycsb(gc, /*stress=*/true, records,
                                              ops, 0.5, 0.5, 0.0, use_net,
                                              /*heap_bytes_override=*/0, loops);

    // Figure 5 series: READ latency, UPDATE latency, GC pauses.
    std::vector<SeriesPoint> reads, updates, gcs;
    for (const auto& s : r.run.samples) {
      const SeriesPoint p{ns_to_s(s.start_ns - r.origin_ns),
                          ns_to_ms(s.latency_ns)};
      (s.op == kv::OpType::kRead ? reads : updates).push_back(p);
    }
    for (const PauseEvent& e : r.pause_events) {
      gcs.push_back({ns_to_s(e.start_ns - r.origin_ns), e.duration_ms()});
    }
    print_series(std::cout, std::string(gc_name(gc)) + "/READ", reads);
    print_series(std::cout, std::string(gc_name(gc)) + "/UPDATE", updates);
    print_series(std::cout, std::string(gc_name(gc)) + "/GC", gcs);

    // Tables 5 (ParallelOld), 6 (G1), 7 (CMS).
    Table t(std::string("latency statistics for ") + gc_name(gc) + " (" +
            std::to_string(r.run.samples.size()) + " operations)");
    t.header({"", "READ", "UPDATE"});
    const auto rs = ycsb::compute_latency_stats(r.run.samples,
                                                kv::OpType::kRead,
                                                r.pause_events);
    const auto us = ycsb::compute_latency_stats(r.run.samples,
                                                kv::OpType::kUpdate,
                                                r.pause_events);
    t.row({"AVG(ms)", Table::num(rs.avg_ms, 3), Table::num(us.avg_ms, 3)});
    t.row({"MAX(ms)", Table::num(rs.max_ms, 3), Table::num(us.max_ms, 3)});
    t.row({"MIN(ms)", Table::num(rs.min_ms, 3), Table::num(us.min_ms, 3)});
    report.set_collector_metric(gc, "read_avg_ms", rs.avg_ms);
    report.set_collector_metric(gc, "update_avg_ms", us.avg_ms);
    report.set_collector_metric(gc, "read_max_ms", rs.max_ms);
    report.set_collector_metric(gc, "update_max_ms", us.max_ms);
    for (std::size_t b = 0; b < rs.bands.size(); ++b) {
      t.row({rs.bands[b].label + " (%reqs)", Table::num(rs.bands[b].pct_reqs, 3),
             Table::num(us.bands[b].pct_reqs, 3)});
      t.row({rs.bands[b].label + " (%GCs)", Table::num(rs.bands[b].pct_gcs, 1),
             Table::num(us.bands[b].pct_gcs, 1)});
    }
    t.print(std::cout);
    report.add_table(t);

    // Pause-visibility check (the reason the network path exists at all):
    // a request in flight across a stop-the-world pause cannot finish
    // before the pause does, so the max client latency overlapping the
    // longest pause must be at least the pause duration.
    const PauseEvent* longest = nullptr;
    for (const PauseEvent& e : r.pause_events) {
      if (e.start_ns < r.run.start_ns || e.end_ns > r.run.end_ns) continue;
      if (longest == nullptr ||
          e.end_ns - e.start_ns > longest->end_ns - longest->start_ns) {
        longest = &e;
      }
    }
    if (longest != nullptr) {
      double max_overlap_ms = 0;
      for (const auto& s : r.run.samples) {
        if (s.start_ns < longest->end_ns &&
            s.start_ns + s.latency_ns > longest->start_ns) {
          max_overlap_ms = std::max(max_overlap_ms, ns_to_ms(s.latency_ns));
        }
      }
      std::cout << "pause-visibility check: longest pause "
                << longest->duration_ms() << " ms, max client latency "
                << "overlapping it " << max_overlap_ms << " ms ("
                << (max_overlap_ms >= longest->duration_ms() ? "visible"
                                                             : "NOT visible")
                << ")\n";
    }
  }
  std::cout << "Expected shape: most operations sit on a low-latency line and\n"
               "fall in the 0.5x-1.5x band with 0% GC overlap; the >2x/4x/8x\n"
               "spike bands are attributed to GC pauses at (or near) 100%.\n";
  return report.write() ? 0 : 1;
}
