// §4.1 + Figure 4: server-side GC pauses of the Cassandra-like store under
// the YCSB load. First the ParallelOld narrative (default vs stress
// configuration), then the Figure 4 pause timelines for CMS and G1 under
// the stress configuration.
#include "bench_json.h"
#include "cassandra_common.h"

int main(int argc, char** argv) {
  using namespace mgc;
  using namespace mgc::bench;
  const BenchArgs args = parse_bench_args(argc, argv);
  banner("Figure 4 + §4.1: GC pauses on the Cassandra-like server",
         "Figure 4 / §4.1");
  const bool use_net = net_flag(argc, argv);
  const int loops = loops_flag(argc, argv);

  BenchReport report("fig4", args);

  const std::uint64_t records = cassandra_records();
  const std::uint64_t ops = cassandra_operations();
  std::cout << "records=" << records << " (1KB rows), operations=" << ops
            << ", 50% read / 50% update, transport="
            << (use_net ? "loopback TCP (--net)" : "in-process") << "\n";

  Table summary("server-side pause summary");
  summary.header({"GC", "config", "pauses", "full", "max pause (ms)",
                  "avg pause (ms)", "total paused (ms)", "flushes"});

  // ParallelOld: default configuration (§4.1 first experiment) ...
  {
    const CassandraRun r = run_cassandra_ycsb(GcKind::kParallelOld,
                                              /*stress=*/false, records, ops,
                                              0.5, 0.5, 0.0, use_net,
                                              /*heap_bytes_override=*/0, loops);
    summary.row({"ParallelOldGC", "default", std::to_string(r.pauses.pauses),
                 std::to_string(r.pauses.full_pauses),
                 Table::num(r.pauses.max_s * 1e3),
                 Table::num(r.pauses.avg_s * 1e3),
                 Table::num(r.pauses.total_s * 1e3), std::to_string(r.flushes)});
    report.set_collector_metric(GcKind::kParallelOld, "default_max_pause_ms",
                                r.pauses.max_s * 1e3);
    report.set_collector_metric(GcKind::kParallelOld, "default_avg_pause_ms",
                                r.pauses.avg_s * 1e3);
  }

  // ... and the three main collectors under the stress configuration.
  for (GcKind gc : main_gc_kinds()) {
    const CassandraRun r = run_cassandra_ycsb(gc, /*stress=*/true, records,
                                              ops, 0.5, 0.5, 0.0, use_net,
                                              /*heap_bytes_override=*/0, loops);
    summary.row({gc_name(gc), "stress", std::to_string(r.pauses.pauses),
                 std::to_string(r.pauses.full_pauses),
                 Table::num(r.pauses.max_s * 1e3),
                 Table::num(r.pauses.avg_s * 1e3),
                 Table::num(r.pauses.total_s * 1e3), std::to_string(r.flushes)});
    report.set_collector_metric(gc, "stress_max_pause_ms",
                                r.pauses.max_s * 1e3);
    report.set_collector_metric(gc, "stress_avg_pause_ms",
                                r.pauses.avg_s * 1e3);
    report.set_collector_metric(gc, "stress_total_pause_ms",
                                r.pauses.total_s * 1e3);
    if (gc == GcKind::kCms || gc == GcKind::kG1) {
      // Figure 4's scatter: pause duration vs elapsed time.
      std::vector<SeriesPoint> pts;
      for (const PauseEvent& e : r.pause_events) {
        pts.push_back({ns_to_s(e.start_ns - r.origin_ns), e.duration_ms()});
      }
      print_series(std::cout, std::string("fig4/") + gc_name(gc), pts);
    }
  }
  summary.print(std::cout);
  report.add_table(summary);
  std::cout << "Expected shape: under stress, ParallelOld's full collections\n"
               "dwarf every other pause in the study (the paper saw minutes);\n"
               "CMS and G1 stay an order of magnitude lower but still far\n"
               "above their DaCapo-scale pauses.\n";
  return report.write() ? 0 : 1;
}
