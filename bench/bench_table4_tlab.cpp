// Table 4: TLAB influence. For every (stable benchmark, GC) pair the
// benchmark runs with TLABs enabled and disabled; if the difference in
// total execution time exceeds a 5% deviation of the average, the TLAB
// "helped" (+) or "hurt" (-), otherwise it is indifferent (=) — the exact
// decision rule of §3.4.
#include "bench_common.h"
#include "bench_json.h"

int main(int argc, char** argv) {
  using namespace mgc;
  using namespace mgc::dacapo;
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  bench::banner("Table 4: TLAB influence over all GCs and the stable subset",
                "Table 4 / §3.4");

  bench::BenchReport report("table4", args);
  const int runs = bench::repeat_count(3);
  report.set_config("runs", Json(runs));
  // Accumulated wall time with/without TLABs, per collector: the guarded
  // trajectory entry (verdict letters are too close to the 5% band to be
  // stable across hosts, so the guard watches the underlying times).
  std::vector<double> tlab_on_s(every_gc_kind().size(), 0.0);
  std::vector<double> tlab_off_s(every_gc_kind().size(), 0.0);

  Table t("TLAB influence (+ helps, - hurts, = indifferent at 5% deviation)");
  std::vector<std::string> head = {"Benchmark"};
  for (GcKind gc : all_gc_kinds()) head.push_back(gc_name(gc));
  t.header(head);

  for (const std::string& name : stable_subset()) {
    std::vector<std::string> row = {name};
    for (GcKind gc : all_gc_kinds()) {
      double with_tlab = 0.0;
      double without_tlab = 0.0;
      std::vector<double> all;
      for (int r = 0; r < runs; ++r) {
        for (const bool tlab : {true, false}) {
          VmConfig cfg = bench::paper_baseline(gc);
          cfg.tlab_enabled = tlab;
          HarnessOptions opts;
          opts.iterations = 6;
          opts.system_gc_between_iterations = true;
          opts.seed = 42 + static_cast<std::uint64_t>(r) * 7;
          const HarnessResult res = run_benchmark(cfg, name, opts);
          (tlab ? with_tlab : without_tlab) += res.total_s;
          all.push_back(res.total_s);
        }
      }
      with_tlab /= runs;
      without_tlab /= runs;
      tlab_on_s[static_cast<std::size_t>(gc)] += with_tlab;
      tlab_off_s[static_cast<std::size_t>(gc)] += without_tlab;
      const double deviation = 0.05 * mean_of(all);
      std::string verdict = "=";
      if (without_tlab > with_tlab + deviation) verdict = "+";
      if (with_tlab > without_tlab + deviation) verdict = "-";
      row.push_back(verdict);
    }
    t.row(row);
  }
  t.print(std::cout);
  report.add_table(t);
  for (GcKind gc : all_gc_kinds()) {
    report.set_collector_metric(gc, "tlab_on_total_s",
                                tlab_on_s[static_cast<std::size_t>(gc)]);
    report.set_collector_metric(gc, "tlab_off_total_s",
                                tlab_off_s[static_cast<std::size_t>(gc)]);
  }
  std::cout << "Expected shape: mostly '=' — the TLAB rarely moves total time\n"
               "beyond the 5% band — with scattered '-' entries where TLAB\n"
               "waste raises GC frequency (the paper saw e.g. G1/pmd, G1/xalan).\n";

  // Ablation on top of the paper's table: adaptive (EWMA-sized, the
  // default) vs fixed 16 KiB TLABs, same 5%-deviation decision rule.
  Table t2("Adaptive vs fixed TLAB (+ adaptive helps, - hurts, =)");
  t2.header(head);
  for (const std::string& name : stable_subset()) {
    std::vector<std::string> row = {name};
    for (GcKind gc : all_gc_kinds()) {
      double adaptive_s = 0.0;
      double fixed_s = 0.0;
      std::vector<double> all;
      for (int r = 0; r < runs; ++r) {
        for (const bool adaptive : {true, false}) {
          VmConfig cfg = bench::paper_baseline(gc);
          cfg.tlab_adaptive = adaptive;
          HarnessOptions opts;
          opts.iterations = 6;
          opts.system_gc_between_iterations = true;
          opts.seed = 42 + static_cast<std::uint64_t>(r) * 7;
          const HarnessResult res = run_benchmark(cfg, name, opts);
          (adaptive ? adaptive_s : fixed_s) += res.total_s;
          all.push_back(res.total_s);
        }
      }
      adaptive_s /= runs;
      fixed_s /= runs;
      const double deviation = 0.05 * mean_of(all);
      std::string verdict = "=";
      if (fixed_s > adaptive_s + deviation) verdict = "+";
      if (adaptive_s > fixed_s + deviation) verdict = "-";
      row.push_back(verdict);
    }
    t2.row(row);
  }
  t2.print(std::cout);
  report.add_table(t2);
  std::cout << "Expected shape: mostly '=' at DaCapo thread counts; adaptive\n"
               "sizing pays off ('+') where many mutators share a small eden\n"
               "(fixed TLABs over-reserve) and where idle threads would\n"
               "otherwise pin large TLAB tails as floating garbage.\n";
  return report.write() ? 0 : 1;
}
