// Figure 1: GC pause durations over the execution of the xalan benchmark,
// for all six collectors, (a) with a forced full GC between iterations and
// (b) without. Prints one gnuplot-ready series per collector per mode.
#include "bench_common.h"

int main() {
  using namespace mgc;
  using namespace mgc::dacapo;
  bench::banner("Figure 1: GC pause time for xalan, with and without a "
                "system GC between iterations",
                "Figure 1(a,b)");

  for (const bool system_gc : {true, false}) {
    std::cout << "\n--- Figure 1(" << (system_gc ? "a) System GC" : "b) No System GC")
              << " ---\n";
    Table summary(std::string("xalan pause summary, system GC ") +
                  (system_gc ? "on" : "off"));
    // The three failure columns stay zero on a healthy run; non-zero counts
    // mean the cascade engaged (degraded-mode pauses are part of the
    // timeline, so a fault experiment reads straight off this table).
    summary.header({"GC", "pauses", "full", "max pause (ms)", "avg pause (ms)",
                    "roots (us)", "cards (us)", "evac (us)",
                    "promo-fail", "cms-fail", "evac-fail",
                    "total exec (s)"});
    for (GcKind gc : all_gc_kinds()) {
      HarnessOptions opts;
      opts.iterations = 10;
      opts.system_gc_between_iterations = system_gc;
      const HarnessResult res =
          run_benchmark(bench::paper_baseline(gc), "xalan", opts);

      std::vector<SeriesPoint> pts;
      // Young-pause critical-path phase breakdown (max across GC workers,
      // averaged over the run's young pauses). The classic scavengers
      // report it; collectors without the breakdown print zeros.
      RunningStats roots_us, cards_us, evac_us;
      GcFailureCounters fails;
      for (const PauseEvent& e : res.pause_events) {
        pts.push_back({ns_to_s(e.start_ns - res.vm_origin_ns),
                       e.duration_ms()});
        if (e.phases.any()) {
          roots_us.add(static_cast<double>(e.phases.root_scan_ns) / 1e3);
          cards_us.add(static_cast<double>(e.phases.card_scan_ns) / 1e3);
          evac_us.add(static_cast<double>(e.phases.evac_drain_ns) / 1e3);
        }
        fails.promotion_failures += e.failures.promotion_failures;
        fails.concurrent_mode_failures += e.failures.concurrent_mode_failures;
        fails.evacuation_failures += e.failures.evacuation_failures;
      }
      print_series(std::cout,
                   std::string(gc_name(gc)) + (system_gc ? "/sysgc" : "/nosysgc"),
                   pts);
      summary.row({gc_name(gc), std::to_string(res.pauses.pauses),
                   std::to_string(res.pauses.full_pauses),
                   Table::num(res.pauses.max_s * 1e3),
                   Table::num(res.pauses.avg_s * 1e3),
                   Table::num(roots_us.mean(), 1), Table::num(cards_us.mean(), 1),
                   Table::num(evac_us.mean(), 1),
                   std::to_string(fails.promotion_failures),
                   std::to_string(fails.concurrent_mode_failures),
                   std::to_string(fails.evacuation_failures),
                   Table::num(res.total_s, 3)});
    }
    summary.print(std::cout);
  }
  std::cout << "Expected shape: with the forced full collections G1 shows the\n"
               "longest pauses and execution time (its full GC is serial);\n"
               "without them G1 pauses all but vanish and Serial is worst.\n";
  return 0;
}
