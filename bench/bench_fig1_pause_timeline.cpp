// Figure 1: GC pause durations over the execution of the xalan benchmark,
// for all six collectors, (a) with a forced full GC between iterations and
// (b) without. Prints one gnuplot-ready series per collector per mode.
// With --json <path> the run also persists the guarded BENCH_fig1 report
// (see bench_json.h); the report builder lives in bench_reports.cpp so the
// perf regression guard regenerates the identical metrics.
#include "bench_common.h"
#include "bench_reports.h"

int main(int argc, char** argv) {
  using namespace mgc;
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  bench::banner("Figure 1: GC pause time for xalan, with and without a "
                "system GC between iterations",
                "Figure 1(a,b)");

  const Json report = bench::make_fig1_report(args);

  std::cout << "Expected shape: with the forced full collections G1 shows the\n"
               "longest pauses and execution time (its full GC is serial);\n"
               "without them G1 pauses all but vanish and Serial is worst.\n";
  return bench::write_report(report, args.json_path) ? 0 : 1;
}
