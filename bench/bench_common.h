// Shared helpers for the experiment binaries. Each bench_* executable
// regenerates one table or figure of the paper; the workload scale can be
// adjusted with MGC_SCALE (1.0 reproduces the default shapes in seconds to
// minutes; smaller values give a quick smoke pass).
#pragma once

#include <cstdio>
#include <iostream>
#include <string>

#include "dacapo/harness.h"
#include "dacapo/suite.h"
#include "runtime/vm_config.h"
#include "support/env.h"
#include "support/stats.h"
#include "support/table.h"
#include "support/units.h"

namespace mgc::bench {

inline void banner(const std::string& what, const std::string& paper_ref) {
  std::cout << "\n================================================================\n"
            << what << "\n(reproduces " << paper_ref
            << " of Carpen-Amarie et al., PMAM'15)\n"
            << "scale=" << env::scale() << " threads=" << env::threads()
            << " [paper sizes scaled 1GB -> 1MiB]\n"
            << "================================================================\n";
}

// The paper's baseline: ParallelOld, ~16 GB heap, ~5.6 GB young, TLAB on.
inline VmConfig paper_baseline(GcKind gc) { return VmConfig::baseline(gc); }

// A VmConfig with explicit paper-unit sizes (e.g. heap_gb=64, young_gb=12).
inline VmConfig config_gb(GcKind gc, double heap_gb, double young_gb) {
  VmConfig cfg = VmConfig::baseline(gc);
  cfg.heap_bytes = static_cast<std::size_t>(heap_gb * 1024) * scale::MB;
  cfg.young_bytes = static_cast<std::size_t>(young_gb * 1024) * scale::MB;
  return cfg;
}

inline VmConfig config_mb(GcKind gc, std::size_t heap_mb,
                          std::size_t young_mb) {
  VmConfig cfg = VmConfig::baseline(gc);
  cfg.heap_bytes = heap_mb * scale::MB;
  cfg.young_bytes = young_mb * scale::MB;
  return cfg;
}

inline int repeat_count(int base) {
  const double s = env::scale();
  const int n = static_cast<int>(base * (s >= 1.0 ? 1.0 : s) + 0.5);
  return n < 2 ? 2 : n;
}

}  // namespace mgc::bench
