// Scaling study: YCSB throughput and tail latency vs. loop/shard count.
//
// The paper's headline scenario is Cassandra under heavy concurrency on a
// 48-core machine; this bench measures how the shard-per-core kvstore and
// the multi-loop SO_REUSEPORT front-end scale the request path. For each
// collector and each point L in {1, 2, 4} it runs the 50/50 YCSB mix over
// loopback TCP with L event loops feeding L shards (pipelined windows of
// 8 ops per batch frame) and reports ops/s and p99.
//
// Guarded metrics are structural fingerprints only (point counts, drain
// violations, non-monotone ops/s steps on >=4 cores); raw ops/s and
// latency numbers are recorded unguarded in the tables and config —
// absolute throughput is machine-bound and higher-is-better, which the
// lower-is-better guard must not clamp.
#include <algorithm>
#include <string>
#include <vector>

#include "bench_json.h"
#include "cassandra_common.h"
#include "kvstore/sharded_store.h"
#include "support/affinity.h"
#include "support/stats.h"

namespace {

struct ScalePoint {
  int loops = 0;
  double ops_s = 0;
  double p99_ms = 0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace mgc;
  using namespace mgc::bench;
  const BenchArgs args = parse_bench_args(argc, argv);
  banner("Scaling: YCSB ops/s and p99 vs. loop/shard count",
         "the §4 client-server study at multicore scale");

  const std::vector<int> kLoopPoints = {1, 2, 4};
  const int kPipelineDepth = 8;
  const int cores = hw_cores();
  const bool pin = affinity_supported() && cores >= 2;
  // One closed-loop connection per client thread; the full run approaches
  // the paper's heavy-concurrency regime, --quick keeps tier-1 CI fast.
  const int conns = args.quick ? 16 : 1024;
  const std::uint64_t records = env::scaled(8000);
  const std::uint64_t ops = env::scaled(80000);

  BenchReport report("scaling", args);
  report.set_config("loop_points", Json(static_cast<double>(kLoopPoints.size())));
  report.set_config("pipeline_depth", Json(static_cast<double>(kPipelineDepth)));
  report.set_config("connections", Json(static_cast<double>(conns)));
  report.set_config("cores", Json(static_cast<double>(cores)));
  report.set_config("pinned", Json(pin ? 1.0 : 0.0));
  std::cout << "cores=" << cores << " pinned=" << (pin ? "yes" : "no")
            << " connections=" << conns << " pipeline_depth=" << kPipelineDepth
            << "\n";

  std::uint64_t drain_violations = 0;
  std::uint64_t nonmonotone = 0;
  std::size_t collectors_run = 0;
  std::size_t points_run = 0;

  for (GcKind gc : main_gc_kinds()) {
    std::cout << "\n####### " << gc_name(gc) << " #######\n";
    Table t(std::string("YCSB scaling for ") + gc_name(gc) + " (" +
            std::to_string(ops) + " ops, " + std::to_string(conns) +
            " connections)");
    t.header({"loops/shards", "reuseport", "ops/s", "p99(ms)", "avg(ms)",
              "shed"});
    std::vector<ScalePoint> points;

    for (int loops : kLoopPoints) {
      VmConfig cfg = cassandra_vm_config(gc);
      Vm vm(cfg);
      const kv::StoreConfig scfg =
          kv::StoreConfig::default_config(cfg.heap_bytes);
      kv::ShardedStore store(vm, scfg, static_cast<std::size_t>(loops));
      kv::ServerConfig sc;
      sc.workers_per_shard = 1;
      sc.pin_workers = pin;
      kv::Server server(vm, store, sc);
      net::NetServerConfig ncfg;
      ncfg.loops = loops;
      ncfg.pin_loops = pin;
      net::NetServer netsrv(server, ncfg);

      ycsb::WorkloadSpec spec;
      spec.record_count = records;
      spec.operation_count = ops;
      spec.read_proportion = 0.5;
      spec.update_proportion = 0.5;
      spec.value_len = scfg.value_len;
      spec.client_threads = conns;
      spec.pipeline_depth = kPipelineDepth;
      ycsb::RemoteEndpoint ep;
      ep.port = netsrv.port();
      ycsb::Client client(ep, spec, env::seed());

      client.load();
      const ycsb::PhaseResult run = client.run();
      netsrv.shutdown();

      // The per-loop drain invariant must hold at every scaling point;
      // a violation is a bug in the front-end, not a perf signal.
      for (const net::NetServerStats& ls : netsrv.per_loop_stats()) {
        if (ls.frames_out + ls.dropped_responses != ls.frames_in ||
            ls.accepted != ls.closed) {
          ++drain_violations;
        }
      }

      std::vector<double> lat_ms;
      lat_ms.reserve(run.samples.size());
      double sum_ms = 0;
      for (const auto& s : run.samples) {
        const double ms = ns_to_ms(s.latency_ns);
        lat_ms.push_back(ms);
        sum_ms += ms;
      }
      const double p99 = lat_ms.empty() ? 0 : percentile_of(lat_ms, 99.0);
      const double avg =
          lat_ms.empty() ? 0 : sum_ms / static_cast<double>(lat_ms.size());
      std::uint64_t shed = 0;
      for (std::size_t i = 0; i < server.shard_count(); ++i) {
        shed += server.shed_count(i);
      }

      ScalePoint pt;
      pt.loops = loops;
      pt.ops_s = run.throughput_ops_s();
      pt.p99_ms = p99;
      points.push_back(pt);
      ++points_run;
      t.row({std::to_string(loops), netsrv.using_reuseport() ? "yes" : "no",
             Table::num(pt.ops_s, 0), Table::num(p99, 3), Table::num(avg, 3),
             std::to_string(shed)});

      // Raw numbers are context, not guarded bounds (ops/s is
      // higher-is-better; wall-clock latency is machine noise at --quick).
      const std::string key_base =
          std::string(gc_name(gc)) + "_L" + std::to_string(loops);
      report.set_config("ops_per_s_" + key_base, Json(pt.ops_s));
      report.set_config("p99_ms_" + key_base, Json(p99));
    }
    t.print(std::cout);
    report.add_table(t);
    ++collectors_run;

    // Monotone scaling check: each doubling of loops/shards must not lose
    // throughput (15% slack for scheduler noise). Only meaningful when the
    // hardware can actually run the loops in parallel.
    if (cores >= 4) {
      for (std::size_t i = 1; i < points.size(); ++i) {
        if (points[i].ops_s < 0.85 * points[i - 1].ops_s) {
          std::cout << "NON-MONOTONE: " << gc_name(gc) << " "
                    << points[i - 1].loops << "->" << points[i].loops
                    << " loops dropped " << Table::num(points[i - 1].ops_s, 0)
                    << " -> " << Table::num(points[i].ops_s, 0) << " ops/s\n";
          ++nonmonotone;
        }
      }
    }
  }

  report.set_config("monotone_check",
                    Json(cores >= 4 ? "active" : "skipped (<4 cores)"));

  // Structural fingerprints (all zero-baselined): any drift fails the
  // perf guard in both directions.
  report.set_metric(
      "loop_points_missing_exact",
      static_cast<double>(kLoopPoints.size() * main_gc_kinds().size() -
                          points_run));
  report.set_metric("collectors_missing_exact",
                    static_cast<double>(main_gc_kinds().size() - collectors_run));
  report.set_metric("pipeline_depth_delta_exact",
                    static_cast<double>(kPipelineDepth - 8));
  report.set_metric("drain_violations_exact",
                    static_cast<double>(drain_violations));
  report.set_metric("nonmonotone_exact", static_cast<double>(nonmonotone));

  std::cout << "\nExpected shape: ops/s grows monotonically with the "
               "loop/shard count on multicore hosts (>=2x at 4 loops on "
               "unloaded hardware); p99 stays flat or improves as front-end "
               "contention is removed. On a single core the points overlap "
               "and the monotone check is skipped.\n";
  if (drain_violations != 0) {
    std::cout << "DRAIN VIOLATIONS: " << drain_violations << "\n";
    return 1;
  }
  return report.write() ? 0 : 1;
}
