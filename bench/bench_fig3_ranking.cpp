// Figure 3: GC ranking. An experiment is a (benchmark, heap size, young
// size) triple; for each experiment the collector with the shortest total
// execution time "wins". The chart reports the percentage of experiments
// each collector won, with the system GC enabled (a) and disabled (b).
#include "bench_common.h"
#include "bench_json.h"

#include <map>

int main(int argc, char** argv) {
  using namespace mgc;
  using namespace mgc::dacapo;
  const bench::BenchArgs args = bench::parse_bench_args(argc, argv);
  bench::banner("Figure 3: GC ranking by number of experiments won",
                "Figure 3(a,b) / §3.5");

  bench::BenchReport report("fig3", args);

  struct Geometry {
    double heap_gb;
    double young_gb;
  };
  const Geometry grid[] = {
      {16, 5.6}, {16, 8}, {32, 5.6}, {32, 16}, {64, 12}, {64, 32},
  };

  for (const bool system_gc : {true, false}) {
    std::map<std::string, int> wins;
    for (GcKind gc : all_gc_kinds()) wins[gc_name(gc)] = 0;
    int experiments = 0;

    for (const std::string& name : stable_subset()) {
      for (const Geometry& g : grid) {
        double best = 0.0;
        std::string best_gc;
        for (GcKind gc : all_gc_kinds()) {
          HarnessOptions opts;
          opts.iterations = 6;
          opts.system_gc_between_iterations = system_gc;
          const HarnessResult res =
              run_benchmark(bench::config_gb(gc, g.heap_gb, g.young_gb), name,
                            opts);
          if (best_gc.empty() || res.total_s < best) {
            best = res.total_s;
            best_gc = gc_name(gc);
          }
        }
        ++wins[best_gc];
        ++experiments;
      }
    }

    std::cout << "\n--- Figure 3(" << (system_gc ? "a) System GC" : "b) No System GC")
              << ") ---\n";
    Table t("share of " + std::to_string(experiments) +
            " experiments won (benchmark x heap x young)");
    t.header({"GC", "experiments won (%)", "wins"});
    // Print sorted descending like the paper's bars.
    std::vector<std::pair<int, std::string>> order;
    for (const auto& [name, w] : wins) order.emplace_back(w, name);
    std::sort(order.rbegin(), order.rend());
    for (const auto& [w, name] : order) {
      t.row({name, Table::num(100.0 * w / experiments, 1),
             std::to_string(w)});
    }
    t.print(std::cout);
    report.add_table(t);
    // Win shares are zero-sum ranking noise, not lower-is-better costs; the
    // trajectory records them as config entries so humans can diff, while
    // the guard only checks the experiment-count fingerprint.
    Json shares = Json::object();
    for (const auto& [name, w] : wins) {
      shares.set(name, Json(100.0 * w / experiments));
    }
    report.set_config(system_gc ? "win_share_sysgc" : "win_share_nosysgc",
                      std::move(shares));
    report.set_metric(std::string(system_gc ? "sysgc" : "nosysgc") +
                          "_experiments_exact",
                      static_cast<double>(experiments));
  }
  std::cout << "Expected shape: with system GC enabled G1 wins nothing (its\n"
               "forced full collections are serial and slow); ParallelOld is\n"
               "consistently near the top in both modes.\n";
  return report.write() ? 0 : 1;
}
