#include "bench_json.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "support/env.h"

namespace mgc::bench {

BenchArgs parse_bench_args(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      args.quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      args.json_path = argv[++i];
    }
  }
  if (args.quick) {
    // Before the first env::scale() read (mains parse args first), so the
    // cached value picks this up; an explicit MGC_SCALE still wins.
    setenv("MGC_SCALE", "0.05", /*overwrite=*/0);  // NOLINT(concurrency-mt-unsafe)
  }
  return args;
}

std::string git_sha() {
  FILE* p = popen("git rev-parse --short=12 HEAD 2>/dev/null", "r");
  if (p == nullptr) return "unknown";
  char buf[64] = {0};
  const bool ok = std::fgets(buf, sizeof buf, p) != nullptr;
  pclose(p);
  if (!ok) return "unknown";
  std::string sha(buf);
  while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r'))
    sha.pop_back();
  return sha.empty() ? "unknown" : sha;
}

std::vector<GcKind> bench_gc_kinds() {
  GcKind k{};
  if (env::gc_override(&k)) return {k};
  return all_gc_kinds();
}

BenchReport::BenchReport(std::string bench_name, BenchArgs args)
    : name_(std::move(bench_name)), args_(std::move(args)) {
  config_.set("scale", Json(env::scale()));
  config_.set("threads", Json(env::threads()));
  config_.set("seed", Json(env::seed()));
  config_.set("quick", Json(args_.quick));
}

void BenchReport::set_metric(const std::string& name, double value) {
  metrics_.set(name, Json(value));
}

void BenchReport::set_collector_metric(GcKind gc, const std::string& name,
                                       double value) {
  const std::string key = gc_name(gc);
  const Json* existing = collectors_.find(key);
  Json obj = existing != nullptr ? *existing : Json::object();
  obj.set(name, Json(value));
  collectors_.set(key, std::move(obj));
}

void BenchReport::set_config(const std::string& key, Json value) {
  config_.set(key, std::move(value));
}

void BenchReport::add_table(const Table& t) {
  Json jt = Json::object();
  jt.set("title", Json(t.title()));
  Json header = Json::array();
  for (const std::string& h : t.header_cells()) header.push_back(Json(h));
  jt.set("header", std::move(header));
  Json rows = Json::array();
  for (const auto& r : t.rows()) {
    Json row = Json::array();
    for (const std::string& c : r) row.push_back(Json(c));
    rows.push_back(std::move(row));
  }
  jt.set("rows", std::move(rows));
  tables_.push_back(std::move(jt));
}

Json BenchReport::to_json() const {
  Json j = Json::object();
  j.set("schema", Json(kBenchSchemaName));
  j.set("schema_version", Json(kBenchSchemaVersion));
  j.set("bench", Json(name_));
  j.set("git_sha", Json(git_sha()));
  j.set("config", config_);
  j.set("metrics", metrics_);
  j.set("collectors", collectors_);
  j.set("tables", tables_);
  return j;
}

bool BenchReport::write() const { return write_report(to_json(), args_.json_path); }

bool write_report(const Json& report, const std::string& path) {
  if (path.empty()) return true;
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "bench_json: cannot write %s\n", path.c_str());
    return false;
  }
  out << report.dump();
  out.close();
  if (!out.good()) {
    std::fprintf(stderr, "bench_json: short write to %s\n", path.c_str());
    return false;
  }
  std::printf("wrote %s\n", path.c_str());
  return true;
}

bool load_report(const std::string& path, Json* out, std::string* err) {
  std::ifstream in(path);
  if (!in) {
    if (err != nullptr) *err = "cannot read " + path;
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  std::string parse_err;
  if (!Json::parse(ss.str(), out, &parse_err)) {
    if (err != nullptr) *err = path + ": " + parse_err;
    return false;
  }
  return true;
}

namespace {

// Checks one flat metrics object; `where` prefixes messages ("metrics" or
// "collectors.G1").
void compare_metric_set(const Json& base, const Json& fresh,
                        const std::string& where, double threshold_pct,
                        std::vector<std::string>* out) {
  for (const auto& [key, bval] : base.members()) {
    if (!bval.is_number()) continue;
    const Json* fval = fresh.find(key);
    if (fval == nullptr || !fval->is_number()) {
      out->push_back(where + "." + key + ": present in baseline, missing in fresh run");
      continue;
    }
    const double b = bval.as_double();
    const double f = fval->as_double();
    // "_exact" metrics are structural fingerprints (trait bits, schema
    // constants): any drift in either direction is a violation.
    if (key.size() > 6 && key.compare(key.size() - 6, 6, "_exact") == 0) {
      if (f != b) {
        out->push_back(where + "." + key + ": expected exactly " +
                       std::to_string(b) + ", fresh run has " +
                       std::to_string(f));
      }
      continue;
    }
    if (b == 0.0) {
      // A plain zero baseline has no ratio to compare against, and many
      // zero counters are timing luck (a concurrent cycle that happened
      // not to trigger), so it is skipped. Structural must-stay-zero
      // invariants (Epsilon pause counts) use the "_exact" suffix.
      continue;
    }
    const double limit = b * (1.0 + threshold_pct / 100.0);
    if (f > limit) {
      char buf[160];
      std::snprintf(buf, sizeof buf,
                    "%s.%s: %.6g exceeds baseline %.6g by more than %.0f%% "
                    "(limit %.6g)",
                    where.c_str(), key.c_str(), f, b, threshold_pct, limit);
      out->push_back(buf);
    }
  }
}

}  // namespace

std::vector<std::string> compare_reports(const Json& baseline,
                                         const Json& fresh,
                                         double threshold_pct) {
  std::vector<std::string> v;
  if (!baseline.is_object()) {
    v.push_back("baseline is not a JSON object");
    return v;
  }
  if (!fresh.is_object()) {
    v.push_back("fresh report is not a JSON object");
    return v;
  }
  if (baseline.string_or("schema", "") != kBenchSchemaName) {
    v.push_back("baseline schema is not '" + std::string(kBenchSchemaName) +
                "' — malformed or wrong file");
    return v;
  }
  if (fresh.string_or("schema", "") != kBenchSchemaName) {
    v.push_back("fresh report schema is not '" +
                std::string(kBenchSchemaName) + "'");
    return v;
  }
  if (baseline.number_or("schema_version", -1) !=
      fresh.number_or("schema_version", -2)) {
    v.push_back("schema_version mismatch: baseline v" +
                std::to_string(static_cast<int>(
                    baseline.number_or("schema_version", -1))) +
                " vs fresh v" +
                std::to_string(
                    static_cast<int>(fresh.number_or("schema_version", -2))) +
                " — re-baseline (see EXPERIMENTS.md)");
    return v;
  }
  if (baseline.string_or("bench", "?") != fresh.string_or("bench", "??")) {
    v.push_back("bench name mismatch: baseline '" +
                baseline.string_or("bench", "?") + "' vs fresh '" +
                fresh.string_or("bench", "??") + "'");
    return v;
  }

  compare_metric_set(baseline.at("metrics"), fresh.at("metrics"), "metrics",
                     threshold_pct, &v);
  const Json& bcol = baseline.at("collectors");
  const Json& fcol = fresh.at("collectors");
  for (const auto& [gc, bmetrics] : bcol.members()) {
    const Json* fmetrics = fcol.find(gc);
    if (fmetrics == nullptr) {
      v.push_back("collectors." + gc + ": missing from fresh run");
      continue;
    }
    compare_metric_set(bmetrics, *fmetrics, "collectors." + gc, threshold_pct,
                       &v);
  }
  return v;
}

}  // namespace mgc::bench
